"""AES round primitives and block encryption (FIPS-197, from scratch).

State representation: a 16-byte ``bytes`` value in FIPS order -- byte
``i`` holds state matrix element ``(row i % 4, column i // 4)``.  This is
also exactly the byte order AES-NI's XMM registers use, so the
``aesenc``/``aesenclast`` helpers here are drop-in models of the hardware
instructions the Intel-IPP victim executes.
"""

from __future__ import annotations

from typing import List, Tuple

#: The AES S-box, generated from the multiplicative inverse in GF(2^8)
#: followed by the affine transform (computed once at import, no tables
#: copied from elsewhere).


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    # Multiplicative inverses via exponentiation (a^254 == a^-1).
    def inverse(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        exponent = 254
        base = a
        while exponent:
            if exponent & 1:
                result = _gf_mul(result, base)
            base = _gf_mul(base, base)
            exponent >>= 1
        return result

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        x = inverse(value)
        # Affine transform: b ^= rot(b,1)^rot(b,2)^rot(b,3)^rot(b,4) ^ 0x63
        y = x
        for shift in (1, 2, 3, 4):
            y ^= ((x << shift) | (x >> (8 - shift))) & 0xFF
        y ^= 0x63
        sbox[value] = y & 0xFF
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

#: ShiftRows permutation: output index -> input index, for the flat FIPS
#: layout (index = row + 4*column).
SHIFT_ROWS_MAP = [0] * 16
for _row in range(4):
    for _column in range(4):
        SHIFT_ROWS_MAP[_row + 4 * _column] = _row + 4 * ((_column + _row) % 4)

INV_SHIFT_ROWS_MAP = [0] * 16
for _out, _in in enumerate(SHIFT_ROWS_MAP):
    INV_SHIFT_ROWS_MAP[_in] = _out


def sub_bytes(state: bytes) -> bytes:
    """SubBytes: byte-wise S-box substitution."""
    return bytes(SBOX[b] for b in state)


def inv_sub_bytes(state: bytes) -> bytes:
    """Inverse SubBytes."""
    return bytes(INV_SBOX[b] for b in state)


def shift_rows(state: bytes) -> bytes:
    """ShiftRows: rotate row ``r`` left by ``r`` positions."""
    return bytes(state[SHIFT_ROWS_MAP[i]] for i in range(16))


def inv_shift_rows(state: bytes) -> bytes:
    """Inverse ShiftRows."""
    return bytes(state[INV_SHIFT_ROWS_MAP[i]] for i in range(16))


def mix_columns(state: bytes) -> bytes:
    """MixColumns: multiply each column by the fixed MDS matrix."""
    out = bytearray(16)
    for column in range(4):
        a = state[4 * column:4 * column + 4]
        out[4 * column + 0] = (_gf_mul(a[0], 2) ^ _gf_mul(a[1], 3)
                               ^ a[2] ^ a[3])
        out[4 * column + 1] = (a[0] ^ _gf_mul(a[1], 2)
                               ^ _gf_mul(a[2], 3) ^ a[3])
        out[4 * column + 2] = (a[0] ^ a[1]
                               ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3))
        out[4 * column + 3] = (_gf_mul(a[0], 3) ^ a[1]
                               ^ a[2] ^ _gf_mul(a[3], 2))
    return bytes(out)


def inv_mix_columns(state: bytes) -> bytes:
    """Inverse MixColumns."""
    out = bytearray(16)
    for column in range(4):
        a = state[4 * column:4 * column + 4]
        out[4 * column + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                               ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
        out[4 * column + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                               ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
        out[4 * column + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                               ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
        out[4 * column + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                               ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))
    return bytes(out)


def add_round_key(state: bytes, round_key: bytes) -> bytes:
    """AddRoundKey: XOR with the 16-byte round key."""
    return bytes(s ^ k for s, k in zip(state, round_key))


# ----------------------------------------------------------------------
# AES-NI instruction models
# ----------------------------------------------------------------------

def aesenc(state: bytes, round_key: bytes) -> bytes:
    """One full AES round, exactly as the ``aesenc`` instruction:
    ``AddRoundKey(MixColumns(ShiftRows(SubBytes(state))), key)``."""
    return add_round_key(mix_columns(shift_rows(sub_bytes(state))), round_key)


def aesenclast(state: bytes, round_key: bytes) -> bytes:
    """The final AES round (no MixColumns), as ``aesenclast``."""
    return add_round_key(shift_rows(sub_bytes(state)), round_key)


# ----------------------------------------------------------------------
# Block encryption
# ----------------------------------------------------------------------

def encrypt_block(plaintext: bytes, round_keys: List[bytes]) -> bytes:
    """Encrypt one 16-byte block with the expanded ``round_keys``."""
    if len(plaintext) != 16:
        raise ValueError("AES blocks are 16 bytes")
    state = add_round_key(plaintext, round_keys[0])
    for round_key in round_keys[1:-1]:
        state = aesenc(state, round_key)
    return aesenclast(state, round_keys[-1])


def decrypt_block(ciphertext: bytes, round_keys: List[bytes]) -> bytes:
    """Decrypt one 16-byte block with the expanded ``round_keys``."""
    if len(ciphertext) != 16:
        raise ValueError("AES blocks are 16 bytes")
    state = add_round_key(ciphertext, round_keys[-1])
    state = inv_shift_rows(inv_sub_bytes(state))
    for round_key in reversed(round_keys[1:-1]):
        state = add_round_key(state, round_key)
        state = inv_mix_columns(state)
        state = inv_shift_rows(inv_sub_bytes(state))
    return add_round_key(state, round_keys[0])


def reduced_round_ciphertext(plaintext: bytes, round_keys: List[bytes],
                             exit_iteration: int) -> bytes:
    """Ground truth for the Section 9 speculative early exit.

    Models the Listing 1 victim exiting its loop after ``exit_iteration``
    iterations of ``aesenc`` (1 <= exit_iteration <= rounds-1) and running
    ``aesenclast`` with the *next* round key (the key pointer has been
    advanced ``exit_iteration`` times, so ``aesenclast`` consumes
    ``round_keys[exit_iteration + 1]``).
    """
    total_rounds = len(round_keys) - 1
    if not 1 <= exit_iteration <= total_rounds - 1:
        raise ValueError(
            f"exit iteration must be in [1, {total_rounds - 1}], "
            f"got {exit_iteration}"
        )
    state = add_round_key(plaintext, round_keys[0])
    for round_number in range(1, exit_iteration + 1):
        state = aesenc(state, round_keys[round_number])
    return aesenclast(state, round_keys[exit_iteration + 1])
