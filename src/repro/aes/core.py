"""AES round primitives and block encryption (FIPS-197, from scratch).

State representation: a 16-byte ``bytes`` value in FIPS order -- byte
``i`` holds state matrix element ``(row i % 4, column i // 4)``.  This is
also exactly the byte order AES-NI's XMM registers use, so the
``aesenc``/``aesenclast`` helpers here are drop-in models of the hardware
instructions the Intel-IPP victim executes.
"""

from __future__ import annotations

from typing import List, Tuple

#: The AES S-box, generated from the multiplicative inverse in GF(2^8)
#: followed by the affine transform (computed once at import, no tables
#: copied from elsewhere).


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    # Multiplicative inverses via exponentiation (a^254 == a^-1).
    def inverse(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        exponent = 254
        base = a
        while exponent:
            if exponent & 1:
                result = _gf_mul(result, base)
            base = _gf_mul(base, base)
            exponent >>= 1
        return result

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        x = inverse(value)
        # Affine transform: b ^= rot(b,1)^rot(b,2)^rot(b,3)^rot(b,4) ^ 0x63
        y = x
        for shift in (1, 2, 3, 4):
            y ^= ((x << shift) | (x >> (8 - shift))) & 0xFF
        y ^= 0x63
        sbox[value] = y & 0xFF
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

#: ShiftRows permutation: output index -> input index, for the flat FIPS
#: layout (index = row + 4*column).
SHIFT_ROWS_MAP = [0] * 16
for _row in range(4):
    for _column in range(4):
        SHIFT_ROWS_MAP[_row + 4 * _column] = _row + 4 * ((_column + _row) % 4)

INV_SHIFT_ROWS_MAP = [0] * 16
for _out, _in in enumerate(SHIFT_ROWS_MAP):
    INV_SHIFT_ROWS_MAP[_in] = _out

# ----------------------------------------------------------------------
# GF(2^8) multiplication tables (fast path)
# ----------------------------------------------------------------------
# 256-entry tables for the fixed MixColumns coefficients, built once at
# import from the bit-serial ``_gf_mul``.  The ``*_reference`` twins
# below keep the definitional loop form; ``tests/test_aes.py`` pins the
# two bit-identical (same obligation as the predictor shortcut caches,
# DESIGN.md decision 5).

_MUL2 = tuple(_gf_mul(x, 2) for x in range(256))
_MUL3 = tuple(_gf_mul(x, 3) for x in range(256))
_MUL9 = tuple(_gf_mul(x, 9) for x in range(256))
_MUL11 = tuple(_gf_mul(x, 11) for x in range(256))
_MUL13 = tuple(_gf_mul(x, 13) for x in range(256))
_MUL14 = tuple(_gf_mul(x, 14) for x in range(256))

#: SubBytes fused with the MixColumns coefficients
#: (``_SBOX2[x] == gf_mul(SBOX[x], 2)``).
_SBOX_T = tuple(SBOX)
_SBOX2 = tuple(_MUL2[s] for s in SBOX)
_SBOX3 = tuple(_MUL3[s] for s in SBOX)
_SHIFT_T = tuple(SHIFT_ROWS_MAP)

#: Classic 32-bit T-tables: ``_T{r}[x]`` is the little-endian column word
#: contributed by byte ``x`` arriving in row ``r`` of a column after
#: ShiftRows, i.e. SubBytes and the MDS-matrix column for that row fused
#: into one lookup.  ``aesenc`` becomes four lookups and three XORs per
#: column plus a single 128-bit AddRoundKey.
_T0 = tuple((_MUL2[s]) | (s << 8) | (s << 16) | (_MUL3[s] << 24)
            for s in SBOX)
_T1 = tuple((_MUL3[s]) | (_MUL2[s] << 8) | (s << 16) | (s << 24)
            for s in SBOX)
_T2 = tuple(s | (_MUL3[s] << 8) | (_MUL2[s] << 16) | (s << 24)
            for s in SBOX)
_T3 = tuple(s | (s << 8) | (_MUL3[s] << 16) | (_MUL2[s] << 24)
            for s in SBOX)

# The flat ShiftRows source indices per output column, as aesenc below
# hardcodes them.
assert _SHIFT_T == (0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11)


def sub_bytes(state: bytes) -> bytes:
    """SubBytes: byte-wise S-box substitution."""
    return bytes(SBOX[b] for b in state)


def inv_sub_bytes(state: bytes) -> bytes:
    """Inverse SubBytes."""
    return bytes(INV_SBOX[b] for b in state)


def shift_rows(state: bytes) -> bytes:
    """ShiftRows: rotate row ``r`` left by ``r`` positions."""
    return bytes(state[SHIFT_ROWS_MAP[i]] for i in range(16))


def inv_shift_rows(state: bytes) -> bytes:
    """Inverse ShiftRows."""
    return bytes(state[INV_SHIFT_ROWS_MAP[i]] for i in range(16))


def mix_columns(state: bytes) -> bytes:
    """MixColumns: multiply each column by the fixed MDS matrix."""
    mul2 = _MUL2
    mul3 = _MUL3
    out = bytearray(16)
    for c in (0, 4, 8, 12):
        a0 = state[c]
        a1 = state[c + 1]
        a2 = state[c + 2]
        a3 = state[c + 3]
        out[c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
        out[c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
        out[c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
        out[c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
    return bytes(out)


def mix_columns_reference(state: bytes) -> bytes:
    """Definitional MixColumns via bit-serial ``_gf_mul`` (the twin that
    pins the table-based :func:`mix_columns`)."""
    out = bytearray(16)
    for column in range(4):
        a = state[4 * column:4 * column + 4]
        out[4 * column + 0] = (_gf_mul(a[0], 2) ^ _gf_mul(a[1], 3)
                               ^ a[2] ^ a[3])
        out[4 * column + 1] = (a[0] ^ _gf_mul(a[1], 2)
                               ^ _gf_mul(a[2], 3) ^ a[3])
        out[4 * column + 2] = (a[0] ^ a[1]
                               ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3))
        out[4 * column + 3] = (_gf_mul(a[0], 3) ^ a[1]
                               ^ a[2] ^ _gf_mul(a[3], 2))
    return bytes(out)


def inv_mix_columns(state: bytes) -> bytes:
    """Inverse MixColumns."""
    mul9 = _MUL9
    mul11 = _MUL11
    mul13 = _MUL13
    mul14 = _MUL14
    out = bytearray(16)
    for c in (0, 4, 8, 12):
        a0 = state[c]
        a1 = state[c + 1]
        a2 = state[c + 2]
        a3 = state[c + 3]
        out[c] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
        out[c + 1] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
        out[c + 2] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
        out[c + 3] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]
    return bytes(out)


def inv_mix_columns_reference(state: bytes) -> bytes:
    """Definitional inverse MixColumns (twin of :func:`inv_mix_columns`)."""
    out = bytearray(16)
    for column in range(4):
        a = state[4 * column:4 * column + 4]
        out[4 * column + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                               ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
        out[4 * column + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                               ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
        out[4 * column + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                               ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
        out[4 * column + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                               ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))
    return bytes(out)


def add_round_key(state: bytes, round_key: bytes) -> bytes:
    """AddRoundKey: XOR with the 16-byte round key."""
    return bytes(s ^ k for s, k in zip(state, round_key))


# ----------------------------------------------------------------------
# AES-NI instruction models
# ----------------------------------------------------------------------

def aesenc(state: bytes, round_key: bytes) -> bytes:
    """One full AES round, exactly as the ``aesenc`` instruction:
    ``AddRoundKey(MixColumns(ShiftRows(SubBytes(state))), key)``.

    SubBytes, ShiftRows and MixColumns are fused into the ``_T0``..``_T3``
    word tables; :func:`aesenc_reference` keeps the four-stage composition
    and the property tests pin the two bit-identical.
    """
    t0 = _T0
    t1 = _T1
    t2 = _T2
    t3 = _T3
    w0 = t0[state[0]] ^ t1[state[5]] ^ t2[state[10]] ^ t3[state[15]]
    w1 = t0[state[4]] ^ t1[state[9]] ^ t2[state[14]] ^ t3[state[3]]
    w2 = t0[state[8]] ^ t1[state[13]] ^ t2[state[2]] ^ t3[state[7]]
    w3 = t0[state[12]] ^ t1[state[1]] ^ t2[state[6]] ^ t3[state[11]]
    return ((w0 | (w1 << 32) | (w2 << 64) | (w3 << 96))
            ^ int.from_bytes(round_key, "little")).to_bytes(16, "little")


def aesenc_reference(state: bytes, round_key: bytes) -> bytes:
    """Stage-by-stage ``aesenc`` (twin of the fused :func:`aesenc`)."""
    return add_round_key(
        mix_columns_reference(shift_rows(sub_bytes(state))), round_key)


def aesenclast(state: bytes, round_key: bytes) -> bytes:
    """The final AES round (no MixColumns), as ``aesenclast``."""
    sbox = _SBOX_T
    shift = _SHIFT_T
    return bytes(
        sbox[state[shift[i]]] ^ round_key[i] for i in range(16))


def aesenclast_reference(state: bytes, round_key: bytes) -> bytes:
    """Stage-by-stage ``aesenclast`` (twin of :func:`aesenclast`)."""
    return add_round_key(shift_rows(sub_bytes(state)), round_key)


# ----------------------------------------------------------------------
# Block encryption
# ----------------------------------------------------------------------

def encrypt_block(plaintext: bytes, round_keys: List[bytes]) -> bytes:
    """Encrypt one 16-byte block with the expanded ``round_keys``."""
    if len(plaintext) != 16:
        raise ValueError("AES blocks are 16 bytes")
    state = add_round_key(plaintext, round_keys[0])
    for round_key in round_keys[1:-1]:
        state = aesenc(state, round_key)
    return aesenclast(state, round_keys[-1])


def decrypt_block(ciphertext: bytes, round_keys: List[bytes]) -> bytes:
    """Decrypt one 16-byte block with the expanded ``round_keys``."""
    if len(ciphertext) != 16:
        raise ValueError("AES blocks are 16 bytes")
    state = add_round_key(ciphertext, round_keys[-1])
    state = inv_shift_rows(inv_sub_bytes(state))
    for round_key in reversed(round_keys[1:-1]):
        state = add_round_key(state, round_key)
        state = inv_mix_columns(state)
        state = inv_shift_rows(inv_sub_bytes(state))
    return add_round_key(state, round_keys[0])


def reduced_round_ciphertext(plaintext: bytes, round_keys: List[bytes],
                             exit_iteration: int) -> bytes:
    """Ground truth for the Section 9 speculative early exit.

    Models the Listing 1 victim exiting its loop after ``exit_iteration``
    iterations of ``aesenc`` (1 <= exit_iteration <= rounds-1) and running
    ``aesenclast`` with the *next* round key (the key pointer has been
    advanced ``exit_iteration`` times, so ``aesenclast`` consumes
    ``round_keys[exit_iteration + 1]``).
    """
    total_rounds = len(round_keys) - 1
    if not 1 <= exit_iteration <= total_rounds - 1:
        raise ValueError(
            f"exit iteration must be in [1, {total_rounds - 1}], "
            f"got {exit_iteration}"
        )
    state = add_round_key(plaintext, round_keys[0])
    for round_number in range(1, exit_iteration + 1):
        state = aesenc(state, round_keys[round_number])
    return aesenclast(state, round_keys[exit_iteration + 1])
