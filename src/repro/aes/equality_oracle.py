"""The equality-leak oracle variant (paper Section 9, "Recovering the
Ciphertext", second option).

"Alternatively, we can also assume a side-channel oracle that only leaks
whether a byte of the ciphertext equals a predefined value.  In this
case, we only need to check if a single cache line has been accessed or
not, while repeating the attack several times with different random
inputs until we detect that the transient ciphertext includes the
expected byte."

The post-processing gadget compares one ciphertext byte against a
constant baked into the application (e.g. a delimiter check in an
encoder) and touches a flag line only on equality -- a one-bit channel
the attacker reads with a single Flush+Reload.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.aes.victim import AesVictim, CIPHERTEXT_ADDRESS
from repro.cpu.machine import Machine
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import CpuState
from repro.isa.memory import Memory
from repro.isa.program import Program

ORACLE_BASE = 0x0041_0800
FLAG_LINE_ADDRESS = 0x3000_0000


class EqualityOracle:
    """An oracle whose post-processing leaks ``ciphertext[position] == K``."""

    def __init__(self, machine: Machine, key: bytes, position: int,
                 constant: int):
        if not 0 <= position < 16:
            raise ValueError(f"byte position out of range: {position}")
        if not 0 <= constant <= 0xFF:
            raise ValueError(f"comparison constant out of range: {constant}")
        self.machine = machine
        self.victim = AesVictim(key)
        self.position = position
        self.constant = constant
        self.program = self._build_program()

    def _build_program(self) -> Program:
        b = ProgramBuilder("equality_oracle", base=ORACLE_BASE)
        b.label("oracle")
        b.call("aes_encrypt")
        # Post-processing: the delimiter/equality check.
        b.load("r9", "rzero", offset=CIPHERTEXT_ADDRESS + self.position,
               width=1)
        b.cmp("r9", imm=self.constant)
        b.jne("no_match")
        b.load("r10", "rzero", offset=FLAG_LINE_ADDRESS, width=8)
        b.label("no_match")
        b.halt()

        labels_by_address: dict = {}
        for label, address in self.victim.program.labels.items():
            labels_by_address.setdefault(address, []).append(label)
        for address, instruction in self.victim.program.items():
            b.at(address)
            for label in sorted(labels_by_address.get(address, [])):
                b.label(label)
            b.raw(instruction)
        return b.build()

    # ------------------------------------------------------------------

    def run(self, plaintext: bytes) -> Tuple[bytes, bool]:
        """Invoke once; return (ciphertext, flag-line-was-touched)."""
        machine = self.machine
        machine.cache.flush(FLAG_LINE_ADDRESS)
        state = CpuState()
        memory = Memory()
        self.victim.provision(memory, plaintext)
        machine.run(self.program, state=state, memory=memory,
                    entry=self.program.address_of("oracle"))
        flagged = machine.cache.contains(FLAG_LINE_ADDRESS)
        return self.victim.read_ciphertext(memory), flagged


class EqualityLeakAttack:
    """Drives the one-bit channel against speculative early exits.

    With the loop poisoned at ``exit_iteration``, the equality gadget
    runs transiently on the reduced-round ciphertext; the architectural
    pass then runs it on the real ciphertext.  The attacker separates the
    two contributions by checking the returned ciphertext byte (known)
    and attributing any *unexplained* flag touch to the transient value.
    """

    def __init__(self, machine: Machine, key: bytes, position: int,
                 constant: int):
        self.machine = machine
        self.oracle = EqualityOracle(machine, key, position, constant)
        self._iteration_phr = None
        self._last_poisoned_phr = None

    def _profile(self):
        if self._iteration_phr is not None:
            return self._iteration_phr
        from repro.aes.attack import profile_loop_phrs

        machine = self.machine
        machine.clear_phr()
        state = CpuState()
        memory = Memory()
        self.oracle.victim.provision(memory, bytes(16))
        result = machine.run(self.oracle.program, state=state, memory=memory,
                             entry=self.oracle.program.address_of("oracle"))
        self._iteration_phr = profile_loop_phrs(
            machine, result.trace, self.oracle.program,
            self.oracle.program.address_of("oracle"),
            self.oracle.victim.loop_block_start,
        )
        return self._iteration_phr

    def observe(self, plaintext: bytes, exit_iteration: int,
                repetitions: int = 2) -> bool:
        """Poisoned invocations; True iff the *transient* (reduced round)
        ciphertext byte equalled the oracle's constant.

        The channel is one bit and can pick up coincidental matches from
        *other* transient windows (e.g. natural mispredictions leaking a
        different intermediate value); the deterministic leak repeats
        across invocations while coincidences depend on transient
        predictor state, so requiring every repetition to flag filters
        them -- the paper's "repeating the attack several times"
        discipline.
        """
        return all(self._observe_once(plaintext, exit_iteration)
                   for _ in range(repetitions))

    def _observe_once(self, plaintext: bytes, exit_iteration: int) -> bool:
        iteration_phr = self._profile()
        from repro.primitives import PhtWriter

        writer = PhtWriter(self.machine)
        if self._last_poisoned_phr is not None and \
                self._last_poisoned_phr != iteration_phr[exit_iteration]:
            writer.write(self.oracle.victim.loop_branch_pc,
                         self._last_poisoned_phr, taken=True)
        writer.write(self.oracle.victim.loop_branch_pc,
                     iteration_phr[exit_iteration], taken=False)
        self._last_poisoned_phr = iteration_phr[exit_iteration]

        self.machine.cache.flush(self.oracle.victim.rounds_address)
        self.machine.clear_phr()
        ciphertext, flagged = self.oracle.run(plaintext)
        architectural_match = \
            ciphertext[self.oracle.position] == self.oracle.constant
        # A flag touch not explained by the architectural byte is the
        # transient leak; if the architectural byte matches, the trial is
        # uninformative (paper: repeat with fresh random inputs).
        if architectural_match:
            return False
        return flagged

    def collect_matches(self, plaintexts: List[bytes],
                        exit_iteration: int) -> List[bytes]:
        """Random-input collection: the plaintexts whose reduced-round
        ciphertext byte equals the constant (the paper's repeat-until-
        detected loop)."""
        return [plaintext for plaintext in plaintexts
                if self.observe(plaintext, exit_iteration)]
