"""The encryption oracle of the paper's Listing 3.

The oracle encrypts a caller-supplied block and then post-processes the
ciphertext for transmission; the post-processing touches memory indexed by
ciphertext bytes (the paper's motivating examples are base64 encoding and
image transmission), which is the side channel that carries the transient
reduced-round ciphertext out to the attacker.

The leak gadget loads ``probe[i * 256 + ciphertext[i]]`` for each byte
position ``i``; each slot is page-sized, so a Flush+Reload pass over the
probe array recovers every byte the gadget touched -- architecturally
(the real ciphertext, which the oracle returns anyway) and transiently
(the reduced-round ciphertext, which it must not).
"""

from __future__ import annotations

from repro.aes.victim import AesVictim, CIPHERTEXT_ADDRESS
from repro.channels.flush_reload import FlushReloadChannel
from repro.cpu.machine import Machine, MachineRunResult
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import CpuState
from repro.isa.memory import Memory
from repro.isa.program import Program

#: Oracle code sits just below the victim function in the same binary.
ORACLE_BASE = 0x0041_0C00
#: Probe array: 16 byte-positions x 256 values, page-stride slots.
PROBE_BASE = 0x2000_0000
PROBE_STRIDE = 4096
PROBE_SLOTS = 16 * 256


class EncryptionOracle:
    """Builds the oracle program and provides invocation helpers."""

    def __init__(self, machine: Machine, key: bytes):
        self.machine = machine
        self.victim = AesVictim(key)
        self.program = self._build_program()
        self.channel = FlushReloadChannel(
            machine,
            base_address=PROBE_BASE,
            stride=PROBE_STRIDE,
            entries=PROBE_SLOTS,
        )

    def _build_program(self) -> Program:
        victim_program = self.victim.program
        b = ProgramBuilder("encryption_oracle", base=ORACLE_BASE)
        b.label("oracle")
        b.call("aes_encrypt")
        # Post-processing: one page-granular table access per ciphertext
        # byte (the encoding step of Listing 3).
        for position in range(16):
            b.load("r9", "rzero", offset=CIPHERTEXT_ADDRESS + position,
                   width=1)
            b.shl("r9", 12)
            b.add("r9", imm=PROBE_BASE + position * 256 * PROBE_STRIDE)
            b.load("r10", "r9", offset=0, width=8)
        b.halt()

        # Splice the victim function (instructions and labels) into the
        # same program image at its original addresses.
        labels_by_address = {}
        for label, address in victim_program.labels.items():
            labels_by_address.setdefault(address, []).append(label)
        for address, instruction in victim_program.items():
            b.at(address)
            for label in sorted(labels_by_address.get(address, [])):
                b.label(label)
            b.raw(instruction)
        return b.build()

    # ------------------------------------------------------------------

    def run(self, plaintext: bytes, thread: int = 0,
            speculate: bool = True) -> MachineRunResult:
        """Invoke the oracle once with ``plaintext``."""
        __, result = self.run_and_read(plaintext, thread=thread,
                                       speculate=speculate)
        return result

    def run_and_read(self, plaintext: bytes, thread: int = 0,
                     speculate: bool = True):
        """Invoke the oracle and return ``(ciphertext, run_result)``."""
        state = CpuState()
        memory = Memory()
        self.victim.provision(memory, plaintext)
        result = self.machine.run(
            self.program,
            thread=thread,
            state=state,
            memory=memory,
            entry=self.program.address_of("oracle"),
            speculate=speculate,
        )
        return self.victim.read_ciphertext(memory), result
