"""The Section 9 speculative key-extraction attack, end to end.

Pipeline (matching the paper's "(Mis)Training the Branch Predictor" /
"Recovering the Ciphertext" / "Key Extraction Algorithm" subsections):

1. **Locate the branch.**  The attacker profiles the oracle once, reads
   the PHR it leaves behind (``Read_PHR``), and feeds the value to
   Pathfinder, which returns the per-iteration PHR values at the loop's
   back-edge branch.
2. **Poison.**  ``Write_PHT`` plants a not-taken prediction at the
   ``(loop branch PC, PHR of iteration i)`` coordinate.
3. **Leak.**  The attacker flushes the ``rounds`` field (delaying branch
   resolution) and the probe array, invokes the oracle, and Flush+Reloads
   the probe.  The transient early exit ran ``aesenclast`` on the
   intermediate state and the oracle's encoding gadget touched probe slots
   indexed by the reduced-round ciphertext bytes.
4. **Extract.**  Reduced-round ciphertexts from iteration-1 exits feed the
   differential cryptanalysis in :mod:`repro.aes.keyrecovery`, recovering
   the master key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aes.core import reduced_round_ciphertext
from repro.aes.oracle import EncryptionOracle
from repro.cpu.machine import Machine, MachineSnapshot
from repro.pathfinder import cached_cfg, cached_path_search
from repro.pathfinder.report import build_report
from repro.primitives import PhrReader, PhtWriter, VictimHandle
from repro.replay import ReplayEngine
from repro.utils.rng import DeterministicRng


def profile_loop_phrs(machine: Machine, result_trace, program,
                      entry: int, loop_block_start: int) -> Dict[int, int]:
    """Map loop iteration (1-based) -> PHR value at the loop back edge.

    Shared by the oracle attacks: feeds an observed run's history to
    Pathfinder and reads the per-iteration PHR values off the recovered
    path (the poisoning coordinates for ``Write_PHT``).
    """
    from repro.cpu.phr import replay_taken_branches

    taken = [(r.pc, r.target) for r in result_trace if r.taken]
    observed = replay_taken_branches(len(taken), taken).doublets()
    cfg = cached_cfg(program, entry=entry)
    paths = cached_path_search(cfg, mode="exact").search(observed)
    if not paths:
        raise RuntimeError("Pathfinder found no path for the oracle run")
    report = build_report(cfg, paths[0],
                          phr_capacity=machine.config.phr_capacity)
    iteration_phr: Dict[int, int] = {}
    iteration = 0
    for block, phr_value in report.phr_at_block:
        if block == loop_block_start:
            iteration += 1
            iteration_phr[iteration] = phr_value
    return iteration_phr


@dataclass
class LeakResult:
    """One attacked oracle invocation."""

    #: Bytes of the transient (reduced-round) ciphertext; -1 where the
    #: channel was ambiguous for that position.
    recovered: List[int]
    #: The architectural (full-round) ciphertext the oracle returned.
    ciphertext: bytes
    #: Fraction of the 16 byte positions recovered unambiguously.
    coverage: float
    #: Probe slots the Flush+Reload pass observed hot.
    hot_slots: int = 0
    #: Oracle invocations this result cost (retry loops update it; a
    #: single :meth:`AesSpectreAttack.leak_reduced_round` call is 1).
    attempts: int = 1


class AmbiguousChannelError(RuntimeError):
    """The side channel stayed ambiguous through the whole retry budget.

    Carries the accounting the bare ``RuntimeError`` used to discard:
    how many attempts ran and the last (best-effort) :class:`LeakResult`.
    """

    def __init__(self, plaintext: bytes, attempts: int,
                 last: Optional[LeakResult]):
        self.plaintext = plaintext
        self.attempts = attempts
        self.last = last
        coverage = f"{last.coverage:.0%}" if last is not None else "n/a"
        super().__init__(
            f"side channel stayed ambiguous after {attempts} attempt(s) "
            f"(last coverage {coverage})"
        )


class AesSpectreAttack:
    """Drives the attack against one oracle instance."""

    def __init__(
        self,
        machine: Machine,
        key: bytes,
        use_read_phr_primitive: bool = False,
        rng: Optional[DeterministicRng] = None,
        retry_budget: int = 8,
        use_checkpoints: bool = False,
        spec: Optional[object] = None,
        store=None,
    ):
        self.machine = machine
        self.oracle = EncryptionOracle(machine, key)
        self.rng = rng if rng is not None else DeterministicRng(0xAE5)
        #: When True, the per-iteration PHR values are obtained through the
        #: actual Read_PHR primitive (slower); when False, from a direct
        #: profiling run (equivalent -- Read_PHR's own evaluation shows
        #: 100% fidelity -- and what the high-trial benchmarks use).
        self.use_read_phr_primitive = use_read_phr_primitive
        if retry_budget < 1:
            raise ValueError(f"retry budget must be >= 1, got {retry_budget}")
        #: Oracle invocations :meth:`two_round_leak` may spend per
        #: plaintext before giving up with :class:`AmbiguousChannelError`.
        self.retry_budget = retry_budget
        #: When True, leaks restore a per-exit-iteration
        #: :class:`~repro.cpu.machine.MachineSnapshot` (poisoned +
        #: channel-flushed) instead of re-running the poison sequence --
        #: the trial-harness fast path, and what makes repeated leaks
        #: order-independent.
        self.use_checkpoints = use_checkpoints
        #: The picklable :class:`repro.aes.trials.AesAttackSpec` this
        #: attack was built from, if any (enables ``recover_key`` fan-out).
        self.spec = spec
        #: Optional shared :class:`~repro.service.store.SnapshotStore`.
        #: With a store attached, :meth:`leak_checkpoint` publishes the
        #: prepared leak state (plus the profiling results it embodies)
        #: under a content address, and consults it before paying for a
        #: fresh profile+poison build -- attacks against the same
        #: (profile, key, exit point) across service jobs or runs share
        #: the expensive preparation.
        self.store = store
        self._iteration_phr: Optional[Dict[int, int]] = None
        self._last_poisoned_phr: Optional[int] = None
        self._key_digest = hashlib.sha256(key).hexdigest()
        #: Lazily built prefix-replay engine holding the per-exit-point
        #: leak checkpoints (captured from the live prepared state).
        self.replay: Optional[ReplayEngine] = None

    # ------------------------------------------------------------------
    # step 1: locate the loop branch's per-iteration PHR values
    # ------------------------------------------------------------------

    def _profile_plaintext(self) -> bytes:
        return bytes(16)  # any fixed block; control flow is data-independent

    def profile(self) -> Dict[int, int]:
        """Map loop iteration (1-based) -> PHR value at the loop branch."""
        if self._iteration_phr is not None:
            return self._iteration_phr
        machine = self.machine
        oracle = self.oracle

        # Run the oracle once from a cleared PHR to train the PHTs and
        # observe its history.
        machine.clear_phr()
        ciphertext, result = oracle.run_and_read(self._profile_plaintext())
        del ciphertext
        taken = [(r.pc, r.target) for r in result.trace if r.taken]

        if self.use_read_phr_primitive:
            observed = self._read_history_via_primitive(len(taken))
            cfg = cached_cfg(oracle.program,
                             entry=oracle.program.address_of("oracle"))
            paths = cached_path_search(cfg, mode="exact").search(observed)
            if not paths:
                raise RuntimeError(
                    "Pathfinder found no path for the oracle run"
                )
            report = build_report(cfg, paths[0],
                                  phr_capacity=machine.config.phr_capacity)
            loop_block = self.oracle.victim.loop_block_start
            iteration_phr: Dict[int, int] = {}
            iteration = 0
            for block, phr_value in report.phr_at_block:
                if block == loop_block:
                    iteration += 1
                    iteration_phr[iteration] = phr_value
        else:
            iteration_phr = profile_loop_phrs(
                machine, result.trace, oracle.program,
                oracle.program.address_of("oracle"),
                self.oracle.victim.loop_block_start,
            )
        self._iteration_phr = iteration_phr
        return iteration_phr

    def _read_history_via_primitive(self, taken_count: int) -> List[int]:
        """Obtain the oracle's history through the Read_PHR primitive."""
        machine = self.machine
        handle = VictimHandle(
            machine,
            self.oracle.program,
            setup=lambda state, memory: self.oracle.victim.provision(
                memory, self._profile_plaintext()
            ),
            entry=self.oracle.program.address_of("oracle"),
        )
        reader = PhrReader(machine, handle, rng=self.rng.fork(1))
        result = reader.read(count=min(taken_count,
                                       machine.config.phr_capacity))
        return result.doublets

    # ------------------------------------------------------------------
    # steps 2+3: poison, run, leak
    # ------------------------------------------------------------------

    def _prepare_leak(self, exit_iteration: int) -> None:
        """Poison, extend the speculation window, and clear the channel."""
        machine = self.machine
        oracle = self.oracle
        iteration_phr = self.profile()
        if exit_iteration not in iteration_phr:
            raise ValueError(
                f"loop has iterations {sorted(iteration_phr)}, "
                f"not {exit_iteration}"
            )

        # (Mis)train: plant a not-taken prediction for that iteration only.
        # A previous trial's poison decays slowly (one taken retrain per
        # victim call against a saturated 3-bit counter), so the attacker
        # first heals the coordinate it poisoned last time -- standard
        # hygiene when measuring many exit points back to back.
        writer = PhtWriter(machine)
        target_phr = iteration_phr[exit_iteration]
        if (self._last_poisoned_phr is not None
                and self._last_poisoned_phr != target_phr):
            writer.write(oracle.victim.loop_branch_pc,
                         self._last_poisoned_phr, taken=True)
        writer.write(oracle.victim.loop_branch_pc, target_phr, taken=False)
        self._last_poisoned_phr = target_phr

        # Extend the speculation window and clear the channel.
        machine.cache.flush(oracle.victim.rounds_address)
        oracle.channel.flush()

        # The victim must see the same PHR trajectory as during profiling.
        machine.clear_phr()

    def _leak_key(self, exit_iteration: int):
        return ("aes", "leak", exit_iteration)

    def _leak_store_key(self, exit_iteration: int) -> Optional[str]:
        """Content address of the prepared leak state, or ``None``.

        The prepared state is a deterministic function of (a) the live
        machine state at this call -- digested in full -- and (b) the
        attack-side state the preparation consumes: the cached
        per-iteration PHR map (or, when absent, the profiling inputs
        that will produce it: the rng seed and the Read_PHR toggle) and
        the previously poisoned coordinate the heal step targets.  All
        of those are key components, so two attacks share an artifact
        exactly when a fresh build would be bit-identical.
        """
        if self.store is None:
            return None
        from repro.service.store import (content_key, machine_digest,
                                         profile_digest)
        return content_key(
            "aes-leak",
            profile_digest(self.machine.config),
            machine_digest(self.machine),
            self._key_digest,
            exit_iteration,
            self.use_read_phr_primitive,
            self.rng.seed,
            self._iteration_phr,
            self._last_poisoned_phr,
        )

    def leak_checkpoint(self, exit_iteration: int) -> MachineSnapshot:
        """The machine checkpoint poised to leak at ``exit_iteration``.

        Built once per exit point: the poison is planted, the speculation
        window extended, and the channel flushed, then the whole machine
        state is captured into the attack's :class:`ReplayEngine`.
        :meth:`leak_reduced_round` restores it per trial in
        O(changed-state), so every trial sees the identical
        predictor/cache trajectory regardless of ordering.

        The capture is taken from the *live* prepared state (not rebuilt
        from the engine root): the heal-then-poison sequence depends on
        which coordinate the previous preparation poisoned, so the live
        state is the ground truth a fresh re-provision would reproduce.

        With a shared store attached, a previously published preparation
        for the same (profile, machine state, key, exit point, profiling
        inputs) is adopted instead of rebuilt -- the profiling oracle run
        and the poison sequence are skipped entirely.  The artifact's
        metadata carries the profiling results (`iteration_phr`, the
        last-poisoned coordinate), so retries and later exit points
        behave exactly as they would after a cold build.
        """
        if self.replay is None:
            self.replay = ReplayEngine(self.machine)
        key = self._leak_key(exit_iteration)
        if key not in self.replay:
            skey = self._leak_store_key(exit_iteration)
            entry = self.store.get(skey) if skey is not None else None
            if entry is not None:
                snapshot, meta = entry
                self._iteration_phr = {
                    int(iteration): phr_value
                    for iteration, phr_value in meta["iteration_phr"].items()
                }
                self._last_poisoned_phr = meta["last_poisoned_phr"]
                self.replay.adopt(key, snapshot)
            else:
                self._prepare_leak(exit_iteration)
                self.replay.capture(key)
                if skey is not None:
                    self.store.put(skey, self.replay.snapshot_of(key), meta={
                        "iteration_phr": {
                            str(iteration): phr_value
                            for iteration, phr_value
                            in self._iteration_phr.items()
                        },
                        "last_poisoned_phr": self._last_poisoned_phr,
                    })
        return self.replay.snapshot_of(key)

    def discard_checkpoints(self) -> None:
        """Drop cached leak checkpoints (after retraining the machine)."""
        if self.replay is not None:
            self.replay.invalidate()

    def leak_reduced_round(self, plaintext: bytes, exit_iteration: int,
                           from_checkpoint: Optional[bool] = None,
                           ) -> LeakResult:
        """Induce an early exit at ``exit_iteration`` and leak the RRC.

        ``from_checkpoint`` (default: the attack's ``use_checkpoints``
        setting) restores the cached :meth:`leak_checkpoint` instead of
        re-running the poison sequence.
        """
        if from_checkpoint is None:
            from_checkpoint = self.use_checkpoints
        if from_checkpoint:
            self.leak_checkpoint(exit_iteration)  # ensure the capture exists
            return self.replay.evaluate(self._leak_key(exit_iteration),
                                        lambda: self._leak_once(plaintext))
        self._prepare_leak(exit_iteration)
        return self._leak_once(plaintext)

    def _leak_once(self, plaintext: bytes) -> LeakResult:
        """Run the oracle from the prepared state and decode the channel."""
        oracle = self.oracle
        ciphertext, __ = oracle.run_and_read(plaintext)

        # Flush+Reload: one hot slot per position is the architectural
        # ciphertext byte; any second hot slot is the transient leak.
        hot = set(oracle.channel.hot_slots())
        recovered: List[int] = []
        for position in range(16):
            slots = {slot - 256 * position
                     for slot in hot
                     if 256 * position <= slot < 256 * (position + 1)}
            slots.discard(ciphertext[position])
            if len(slots) == 1:
                recovered.append(slots.pop())
            elif not slots:
                # Transient byte equals the architectural byte.
                recovered.append(ciphertext[position])
            else:
                recovered.append(-1)
        coverage = sum(1 for byte in recovered if byte >= 0) / 16
        return LeakResult(recovered=recovered, ciphertext=ciphertext,
                          coverage=coverage, hot_slots=len(hot))

    # ------------------------------------------------------------------
    # evaluation helper (paper Section 9, "Evaluation")
    # ------------------------------------------------------------------

    def ground_truth_rrc(self, plaintext: bytes, exit_iteration: int) -> bytes:
        """The true reduced-round ciphertext for comparison."""
        return reduced_round_ciphertext(plaintext,
                                        self.oracle.victim.round_keys,
                                        exit_iteration)

    def success_rate(self, plaintext: bytes, exit_iteration: int) -> float:
        """Fraction of leaked bytes matching the ground truth."""
        leak = self.leak_reduced_round(plaintext, exit_iteration)
        truth = self.ground_truth_rrc(plaintext, exit_iteration)
        matches = sum(
            1 for got, want in zip(leak.recovered, truth) if got == want
        )
        return matches / 16

    # ------------------------------------------------------------------
    # step 4: key extraction
    # ------------------------------------------------------------------

    def two_round_leak(self, plaintext: bytes,
                       retry_budget: Optional[int] = None) -> LeakResult:
        """Unambiguous RRC-at-iteration-1 leak, with retry accounting.

        Retries on channel ambiguity with the same plaintext (the paper's
        evaluation repeats measurements the same way), up to
        ``retry_budget`` attempts (default: the attack's budget).  Under
        ``use_checkpoints`` a checkpoint restore is deterministic, so only
        the first attempt uses it -- retries fall back to the live poison
        sequence, whose evolved PHT/cache state is exactly what
        disambiguates the channel.  Raises :class:`AmbiguousChannelError`
        when the budget runs out.
        """
        budget = self.retry_budget if retry_budget is None else retry_budget
        if budget < 1:
            raise ValueError(f"retry budget must be >= 1, got {budget}")
        last: Optional[LeakResult] = None
        for attempt in range(1, budget + 1):
            from_checkpoint = self.use_checkpoints and attempt == 1
            leak = self.leak_reduced_round(plaintext, exit_iteration=1,
                                           from_checkpoint=from_checkpoint)
            leak.attempts = attempt
            if all(byte >= 0 for byte in leak.recovered):
                return leak
            last = leak
        raise AmbiguousChannelError(plaintext, attempts=budget, last=last)

    def two_round_oracle(self, plaintext: bytes) -> bytes:
        """RRC-at-iteration-1 oracle for the differential key recovery."""
        return bytes(self.two_round_leak(plaintext).recovered)

    def recover_key(self, workers: Optional[int] = None,
                    chunk_size: Optional[int] = None) -> bytes:
        """Run the full pipeline and return the recovered AES key.

        ``workers`` (default: the ``REPRO_WORKERS`` environment knob) fans
        the 16 key-byte recoveries over the trial harness; that path
        requires the attack to have been built from a picklable spec
        (:func:`repro.aes.trials.build_attack`), since each worker process
        reconstructs its own machine + oracle.
        """
        from repro.aes.keyrecovery import recover_key_from_two_round_oracle
        from repro.harness import resolve_workers

        workers = resolve_workers(workers)
        if workers > 1:
            if self.spec is None:
                raise ValueError(
                    "parallel recover_key needs an attack built from an "
                    "AesAttackSpec (repro.aes.trials.build_attack)"
                )
            from repro.aes.trials import recover_key_parallel

            return recover_key_parallel(self.spec, workers=workers,
                                        chunk_size=chunk_size)
        return recover_key_from_two_round_oracle(self.two_round_oracle,
                                                 rng=self.rng.fork(2))
