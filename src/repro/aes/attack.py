"""The Section 9 speculative key-extraction attack, end to end.

Pipeline (matching the paper's "(Mis)Training the Branch Predictor" /
"Recovering the Ciphertext" / "Key Extraction Algorithm" subsections):

1. **Locate the branch.**  The attacker profiles the oracle once, reads
   the PHR it leaves behind (``Read_PHR``), and feeds the value to
   Pathfinder, which returns the per-iteration PHR values at the loop's
   back-edge branch.
2. **Poison.**  ``Write_PHT`` plants a not-taken prediction at the
   ``(loop branch PC, PHR of iteration i)`` coordinate.
3. **Leak.**  The attacker flushes the ``rounds`` field (delaying branch
   resolution) and the probe array, invokes the oracle, and Flush+Reloads
   the probe.  The transient early exit ran ``aesenclast`` on the
   intermediate state and the oracle's encoding gadget touched probe slots
   indexed by the reduced-round ciphertext bytes.
4. **Extract.**  Reduced-round ciphertexts from iteration-1 exits feed the
   differential cryptanalysis in :mod:`repro.aes.keyrecovery`, recovering
   the master key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aes.core import reduced_round_ciphertext
from repro.aes.oracle import EncryptionOracle
from repro.cpu.machine import Machine
from repro.pathfinder import ControlFlowGraph, PathSearch
from repro.pathfinder.report import build_report
from repro.primitives import PhrReader, PhtWriter, VictimHandle
from repro.utils.rng import DeterministicRng


def profile_loop_phrs(machine: Machine, result_trace, program,
                      entry: int, loop_block_start: int) -> Dict[int, int]:
    """Map loop iteration (1-based) -> PHR value at the loop back edge.

    Shared by the oracle attacks: feeds an observed run's history to
    Pathfinder and reads the per-iteration PHR values off the recovered
    path (the poisoning coordinates for ``Write_PHT``).
    """
    from repro.cpu.phr import replay_taken_branches

    taken = [(r.pc, r.target) for r in result_trace if r.taken]
    observed = replay_taken_branches(len(taken), taken).doublets()
    cfg = ControlFlowGraph(program, entry=entry)
    paths = PathSearch(cfg, mode="exact").search(observed)
    if not paths:
        raise RuntimeError("Pathfinder found no path for the oracle run")
    report = build_report(cfg, paths[0],
                          phr_capacity=machine.config.phr_capacity)
    iteration_phr: Dict[int, int] = {}
    iteration = 0
    for block, phr_value in report.phr_at_block:
        if block == loop_block_start:
            iteration += 1
            iteration_phr[iteration] = phr_value
    return iteration_phr


@dataclass
class LeakResult:
    """One attacked oracle invocation."""

    #: Bytes of the transient (reduced-round) ciphertext; -1 where the
    #: channel was ambiguous for that position.
    recovered: List[int]
    #: The architectural (full-round) ciphertext the oracle returned.
    ciphertext: bytes
    #: Fraction of the 16 byte positions recovered unambiguously.
    coverage: float


class AesSpectreAttack:
    """Drives the attack against one oracle instance."""

    def __init__(
        self,
        machine: Machine,
        key: bytes,
        use_read_phr_primitive: bool = False,
        rng: Optional[DeterministicRng] = None,
    ):
        self.machine = machine
        self.oracle = EncryptionOracle(machine, key)
        self.rng = rng if rng is not None else DeterministicRng(0xAE5)
        #: When True, the per-iteration PHR values are obtained through the
        #: actual Read_PHR primitive (slower); when False, from a direct
        #: profiling run (equivalent -- Read_PHR's own evaluation shows
        #: 100% fidelity -- and what the high-trial benchmarks use).
        self.use_read_phr_primitive = use_read_phr_primitive
        self._iteration_phr: Optional[Dict[int, int]] = None
        self._last_poisoned_phr: Optional[int] = None

    # ------------------------------------------------------------------
    # step 1: locate the loop branch's per-iteration PHR values
    # ------------------------------------------------------------------

    def _profile_plaintext(self) -> bytes:
        return bytes(16)  # any fixed block; control flow is data-independent

    def profile(self) -> Dict[int, int]:
        """Map loop iteration (1-based) -> PHR value at the loop branch."""
        if self._iteration_phr is not None:
            return self._iteration_phr
        machine = self.machine
        oracle = self.oracle

        # Run the oracle once from a cleared PHR to train the PHTs and
        # observe its history.
        machine.clear_phr()
        ciphertext, result = oracle.run_and_read(self._profile_plaintext())
        del ciphertext
        taken = [(r.pc, r.target) for r in result.trace if r.taken]

        if self.use_read_phr_primitive:
            observed = self._read_history_via_primitive(len(taken))
            cfg = ControlFlowGraph(oracle.program,
                                   entry=oracle.program.address_of("oracle"))
            paths = PathSearch(cfg, mode="exact").search(observed)
            if not paths:
                raise RuntimeError(
                    "Pathfinder found no path for the oracle run"
                )
            report = build_report(cfg, paths[0],
                                  phr_capacity=machine.config.phr_capacity)
            loop_block = self.oracle.victim.loop_block_start
            iteration_phr: Dict[int, int] = {}
            iteration = 0
            for block, phr_value in report.phr_at_block:
                if block == loop_block:
                    iteration += 1
                    iteration_phr[iteration] = phr_value
        else:
            iteration_phr = profile_loop_phrs(
                machine, result.trace, oracle.program,
                oracle.program.address_of("oracle"),
                self.oracle.victim.loop_block_start,
            )
        self._iteration_phr = iteration_phr
        return iteration_phr

    def _read_history_via_primitive(self, taken_count: int) -> List[int]:
        """Obtain the oracle's history through the Read_PHR primitive."""
        machine = self.machine
        handle = VictimHandle(
            machine,
            self.oracle.program,
            setup=lambda state, memory: self.oracle.victim.provision(
                memory, self._profile_plaintext()
            ),
            entry=self.oracle.program.address_of("oracle"),
        )
        reader = PhrReader(machine, handle, rng=self.rng.fork(1))
        result = reader.read(count=min(taken_count,
                                       machine.config.phr_capacity))
        return result.doublets

    # ------------------------------------------------------------------
    # steps 2+3: poison, run, leak
    # ------------------------------------------------------------------

    def leak_reduced_round(self, plaintext: bytes,
                           exit_iteration: int) -> LeakResult:
        """Induce an early exit at ``exit_iteration`` and leak the RRC."""
        machine = self.machine
        oracle = self.oracle
        iteration_phr = self.profile()
        if exit_iteration not in iteration_phr:
            raise ValueError(
                f"loop has iterations {sorted(iteration_phr)}, "
                f"not {exit_iteration}"
            )

        # (Mis)train: plant a not-taken prediction for that iteration only.
        # A previous trial's poison decays slowly (one taken retrain per
        # victim call against a saturated 3-bit counter), so the attacker
        # first heals the coordinate it poisoned last time -- standard
        # hygiene when measuring many exit points back to back.
        writer = PhtWriter(machine)
        target_phr = iteration_phr[exit_iteration]
        if (self._last_poisoned_phr is not None
                and self._last_poisoned_phr != target_phr):
            writer.write(oracle.victim.loop_branch_pc,
                         self._last_poisoned_phr, taken=True)
        writer.write(oracle.victim.loop_branch_pc, target_phr, taken=False)
        self._last_poisoned_phr = target_phr

        # Extend the speculation window and clear the channel.
        machine.cache.flush(oracle.victim.rounds_address)
        oracle.channel.flush()

        # The victim must see the same PHR trajectory as during profiling.
        machine.clear_phr()
        ciphertext, __ = oracle.run_and_read(plaintext)

        # Flush+Reload: one hot slot per position is the architectural
        # ciphertext byte; any second hot slot is the transient leak.
        hot = set(oracle.channel.hot_slots())
        recovered: List[int] = []
        for position in range(16):
            slots = {slot - 256 * position
                     for slot in hot
                     if 256 * position <= slot < 256 * (position + 1)}
            slots.discard(ciphertext[position])
            if len(slots) == 1:
                recovered.append(slots.pop())
            elif not slots:
                # Transient byte equals the architectural byte.
                recovered.append(ciphertext[position])
            else:
                recovered.append(-1)
        coverage = sum(1 for byte in recovered if byte >= 0) / 16
        return LeakResult(recovered=recovered, ciphertext=ciphertext,
                          coverage=coverage)

    # ------------------------------------------------------------------
    # evaluation helper (paper Section 9, "Evaluation")
    # ------------------------------------------------------------------

    def ground_truth_rrc(self, plaintext: bytes, exit_iteration: int) -> bytes:
        """The true reduced-round ciphertext for comparison."""
        return reduced_round_ciphertext(plaintext,
                                        self.oracle.victim.round_keys,
                                        exit_iteration)

    def success_rate(self, plaintext: bytes, exit_iteration: int) -> float:
        """Fraction of leaked bytes matching the ground truth."""
        leak = self.leak_reduced_round(plaintext, exit_iteration)
        truth = self.ground_truth_rrc(plaintext, exit_iteration)
        matches = sum(
            1 for got, want in zip(leak.recovered, truth) if got == want
        )
        return matches / 16

    # ------------------------------------------------------------------
    # step 4: key extraction
    # ------------------------------------------------------------------

    def two_round_oracle(self, plaintext: bytes) -> bytes:
        """RRC-at-iteration-1 oracle for the differential key recovery.

        Retries on channel ambiguity with the same plaintext (the paper's
        evaluation repeats measurements the same way).
        """
        for _ in range(8):
            leak = self.leak_reduced_round(plaintext, exit_iteration=1)
            if all(byte >= 0 for byte in leak.recovered):
                return bytes(leak.recovered)
        raise RuntimeError("side channel stayed ambiguous after retries")

    def recover_key(self) -> bytes:
        """Run the full pipeline and return the recovered AES key."""
        from repro.aes.keyrecovery import recover_key_from_two_round_oracle

        return recover_key_from_two_round_oracle(self.two_round_oracle,
                                                 rng=self.rng.fork(2))
