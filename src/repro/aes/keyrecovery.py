"""Differential key recovery from two-round AES ciphertexts.

Section 9's "Key Extraction Algorithm": a two-round ciphertext

    RRC = k2 ^ SR(SB(k1 ^ MC(SR(SB(k0 ^ P)))))

contains only one MixColumns, so changing a single plaintext byte disturbs
exactly four output bytes through a fully traceable path.  Guessing one
byte of ``k0`` predicts the inner difference entering the second SubBytes;
the S-box's differential behaviour then filters the guesses:

* pick a plaintext byte position ``i`` and an affected output byte ``b``;
* for plaintext pairs differing only in byte ``i`` by ``d``, the observed
  output difference must satisfy
  ``RRC[b] ^ RRC'[b] == SB(u) ^ SB(u ^ mc_coef * (SB(P[i]^g) ^ SB(P[i]^d^g)))``
  for the correct guess ``g = k0[i]`` and some byte ``u`` (the stable
  second-round S-box input);
* intersecting the surviving ``(g, u)`` pairs over several differences
  ``d`` leaves the unique ``g``.

Recovering all 16 bytes of ``k0`` yields the master key directly (for
AES-128, round key 0 *is* the key; the key schedule inversion in
:mod:`repro.aes.keyschedule` generalises the final step).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.aes.core import INV_SHIFT_ROWS_MAP, SBOX, _gf_mul
from repro.utils.rng import DeterministicRng

#: MixColumns coefficient matrix: row r of the output column is
#: sum(M[r][j] * input[j]).
MC_MATRIX = (
    (2, 3, 1, 1),
    (1, 2, 3, 1),
    (1, 1, 2, 3),
    (3, 1, 1, 2),
)

#: Default plaintext-byte differences; any set of distinct non-zero bytes
#: works, more differences give stronger filtering.
DEFAULT_DELTAS = (0x01, 0x4A, 0x93, 0xE7)


def affected_output_bytes(plaintext_index: int) -> List[int]:
    """The four RRC byte positions a given plaintext byte influences.

    Plaintext byte ``i = row + 4*column`` moves (through the first
    ShiftRows) into column ``(column - row) mod 4`` of the MixColumns
    input, spreading to that column's four bytes, which the second
    ShiftRows then scatters.
    """
    row = plaintext_index % 4
    column = plaintext_index // 4
    mixed_column = (column - row) % 4
    return [INV_SHIFT_ROWS_MAP[4 * mixed_column + out_row]
            for out_row in range(4)]


def _mc_coefficient(plaintext_index: int, output_row: int) -> int:
    """MixColumns coefficient linking plaintext byte ``i`` to the affected
    column's ``output_row``."""
    row = plaintext_index % 4
    return MC_MATRIX[output_row][row]


def recover_key_byte(
    oracle: Callable[[bytes], bytes],
    base_plaintext: bytes,
    index: int,
    base_rrc: Optional[bytes] = None,
    deltas: Sequence[int] = DEFAULT_DELTAS,
) -> int:
    """Recover ``k0[index]`` via the differential filter.

    ``oracle`` maps a plaintext block to its two-round ciphertext.
    """
    if base_rrc is None:
        base_rrc = oracle(base_plaintext)
    base_byte = base_plaintext[index]

    # Observed output differences per (delta, output_row).
    observed = {}
    for delta in deltas:
        flipped = bytearray(base_plaintext)
        flipped[index] ^= delta
        rrc = oracle(bytes(flipped))
        for output_row in range(4):
            b = affected_output_bytes(index)[output_row]
            observed[(delta, output_row)] = base_rrc[b] ^ rrc[b]

    survivors = []
    for guess in range(256):
        # The inner differences this guess predicts, per delta.
        inner = {
            delta: SBOX[base_byte ^ guess] ^ SBOX[base_byte ^ delta ^ guess]
            for delta in deltas
        }
        consistent = False
        for output_row in range(4):
            coefficient = _mc_coefficient(index, output_row)
            for u in range(256):
                if all(
                    (SBOX[u] ^ SBOX[u ^ _gf_mul(inner[delta], coefficient)])
                    == observed[(delta, output_row)]
                    for delta in deltas
                ):
                    consistent = True
                    break
            if consistent:
                break
        if consistent:
            survivors.append(guess)

    if len(survivors) == 1:
        return survivors[0]
    if not survivors:
        raise RuntimeError(f"no key-byte candidate survived at index {index}")
    # Refine ambiguous survivors with extra differences.
    extra = [d for d in range(1, 256)
             if d not in deltas][:4]
    return recover_key_byte(oracle, base_plaintext, index,
                            base_rrc=base_rrc,
                            deltas=tuple(deltas) + tuple(extra))


def recover_key_from_two_round_oracle(
    oracle: Callable[[bytes], bytes],
    rng: Optional[DeterministicRng] = None,
    deltas: Sequence[int] = DEFAULT_DELTAS,
) -> bytes:
    """Recover the full AES-128 key from a two-round-ciphertext oracle."""
    if rng is None:
        rng = DeterministicRng(0xD1FF)
    base_plaintext = rng.bytes(16)
    base_rrc = oracle(base_plaintext)
    key = bytearray(16)
    for index in range(16):
        key[index] = recover_key_byte(oracle, base_plaintext, index,
                                      base_rrc=base_rrc, deltas=deltas)
    return bytes(key)
