"""AES substrate for the Section 9 key-recovery case study.

A complete from-scratch AES implementation (core rounds, key schedule with
inversion, block cipher modes), the Intel-IPP-style *looped* AES-NI victim
of the paper's Listing 1 compiled into the reproduction ISA, the Listing 3
encryption oracle with its post-processing side channel, and the
cryptanalysis that turns transiently leaked reduced-round ciphertexts back
into the secret key.
"""

from repro.aes.core import (
    aesenc,
    aesenc_reference,
    aesenclast,
    aesenclast_reference,
    encrypt_block,
    decrypt_block,
    reduced_round_ciphertext,
)
from repro.aes.keyschedule import (
    expand_key,
    invert_round_key_128,
    rounds_for_key,
)
from repro.aes.modes import (
    cbc_decrypt,
    cbc_encrypt,
    cfb_decrypt,
    cfb_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
)
from repro.aes.victim import AesUnrolledVictim, AesVictim
from repro.aes.cbc_victim import AesCbcVictim
from repro.aes.oracle import EncryptionOracle
from repro.aes.equality_oracle import EqualityLeakAttack, EqualityOracle
from repro.aes.keyrecovery import recover_key_from_two_round_oracle
from repro.aes.attack import (
    AesSpectreAttack,
    AmbiguousChannelError,
    LeakResult,
)
from repro.aes.trials import (
    AesAttackSpec,
    AesVictimSpec,
    build_attack,
    recover_key_parallel,
    run_victim_signatures,
    setup_attack,
    setup_victim_signature,
    victim_signature_batch,
    victim_signature_trial,
)

__all__ = [
    "AesAttackSpec",
    "AesVictimSpec",
    "run_victim_signatures",
    "setup_victim_signature",
    "victim_signature_batch",
    "victim_signature_trial",
    "AesCbcVictim",
    "AesSpectreAttack",
    "AmbiguousChannelError",
    "LeakResult",
    "build_attack",
    "recover_key_parallel",
    "setup_attack",
    "AesUnrolledVictim",
    "AesVictim",
    "EncryptionOracle",
    "EqualityLeakAttack",
    "EqualityOracle",
    "aesenc",
    "aesenc_reference",
    "aesenclast",
    "aesenclast_reference",
    "cbc_decrypt",
    "cbc_encrypt",
    "cfb_decrypt",
    "cfb_encrypt",
    "ctr_transform",
    "decrypt_block",
    "ecb_decrypt",
    "ecb_encrypt",
    "encrypt_block",
    "expand_key",
    "invert_round_key_128",
    "recover_key_from_two_round_oracle",
    "reduced_round_ciphertext",
    "rounds_for_key",
]
