"""Pathfinder reproduction: high-resolution control-flow attacks on the CBP.

A from-scratch Python reproduction of *"Pathfinder: High-Resolution
Control-Flow Attacks Exploiting the Conditional Branch Predictor"*
(Yavarzadeh et al., ASPLOS 2024), built over a functional simulator of the
reverse-engineered Intel conditional branch predictor.

Layer map (see DESIGN.md for the full inventory):

* :mod:`repro.isa` -- a small x86-flavoured ISA, assembler, interpreter;
* :mod:`repro.cpu` -- PHR, PHTs/CBP, BTB/IBP/RAS, cache, speculation,
  SMT/domain model (the simulated machine);
* :mod:`repro.channels` -- Flush+Reload;
* :mod:`repro.primitives` -- Read/Write PHR, Read/Write PHT, Extended
  Read PHR (the paper's Attack Primitives 1-4);
* :mod:`repro.pathfinder` -- the CFG-recovery tool (Section 6);
* :mod:`repro.attacks` -- boundary analysis and the simulated kernel
  (Section 7);
* :mod:`repro.jpeg` -- the image-recovery case study (Section 8);
* :mod:`repro.aes` -- the AES key-recovery case study (Section 9);
* :mod:`repro.mitigations` -- Section 10's countermeasures;
* :mod:`repro.harness` -- deterministic trial fan-out (process pool +
  machine snapshot/restore) for the repeated-trial evaluations.
"""

from repro.cpu import (
    ALDER_LAKE,
    Machine,
    MachineConfig,
    PathHistoryRegister,
    RAPTOR_LAKE,
    SKYLAKE,
    TARGET_MACHINES,
)
from repro.primitives import (
    ExtendedPhrReader,
    PhrMacros,
    PhrReader,
    PhtReader,
    PhtWriter,
    VictimHandle,
)
from repro.pathfinder import ControlFlowGraph, PathSearch
from repro.harness import TrialReport, TrialRunner, run_trials, trial_rng
from repro.replay import ReplayEngine, ReplayStats

__version__ = "1.0.0"

__all__ = [
    "ALDER_LAKE",
    "ControlFlowGraph",
    "ExtendedPhrReader",
    "Machine",
    "MachineConfig",
    "PathHistoryRegister",
    "PathSearch",
    "PhrMacros",
    "PhrReader",
    "PhtReader",
    "PhtWriter",
    "RAPTOR_LAKE",
    "ReplayEngine",
    "ReplayStats",
    "SKYLAKE",
    "TARGET_MACHINES",
    "TrialReport",
    "TrialRunner",
    "VictimHandle",
    "__version__",
    "run_trials",
    "trial_rng",
]
