"""Half&Half-style CBP partitioning (paper Section 10.2 / [71]).

Half&Half observes that one PC bit (PC[5] on Alder/Raptor Lake) selects
half of every PHT's sets, so two domains whose branches are placed at
opposite values of that bit can never share a PHT entry.  The paper notes
two limits, both reproduced here:

* the scheme only splits the predictor two ways, and
* it does **not** isolate the PHR -- the PHR read/write attacks survive
  partitioning unchanged (only the PHT-based Extended Read is stopped).
"""

from __future__ import annotations

from repro.cpu.machine import Machine
from repro.utils.bits import bit, set_bit


class HalfAndHalfPartition:
    """Assigns each of two domains one value of the partition PC bit."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.partition_bit = machine.config.pc_index_bit

    def domain_of(self, pc: int) -> int:
        """Which partition (0/1) a branch address belongs to."""
        return bit(pc, self.partition_bit)

    def relocate(self, pc: int, domain: int) -> int:
        """Move a branch address into ``domain``'s partition.

        Models the Half&Half compiler pass that aligns every branch of a
        protection domain to one value of the partition bit.
        """
        if domain not in (0, 1):
            raise ValueError(f"domain must be 0 or 1, got {domain}")
        return set_bit(pc, self.partition_bit, domain)

    # ------------------------------------------------------------------
    # effectiveness experiments
    # ------------------------------------------------------------------

    def pht_isolated(self, victim_pc: int, phr_value: int) -> bool:
        """PHT primitives are blocked when domains are partitioned.

        The victim trains a branch in partition 0; an attacker confined to
        partition 1 looks up the aliased coordinate.  With partitioning
        the set indexes differ in the PC-bit component, so the lookup
        cannot return the victim's entry.
        """
        machine = self.machine
        victim_branch = self.relocate(victim_pc, 0)
        attacker_branch = self.relocate(victim_pc + 0x1000_0000, 1)
        phr = machine.phr(0)
        for _ in range(8):
            phr.set_value(phr_value)
            machine.observe_conditional(victim_branch, victim_branch + 0x40,
                                        True)
        phr.set_value(phr_value)
        prediction = machine.cbp.predict(attacker_branch, phr)
        for table in machine.cbp.tables:
            victim_index = table.index(victim_branch, phr)
            attacker_index = table.index(attacker_branch, phr)
            if victim_index == attacker_index:
                return False
        # The attacker's lookup must not be served by any tagged entry the
        # victim trained (provider 0 = base predictor fallback, which the
        # partitioned base-index also separates on real Half&Half).
        return prediction.provider == 0

    def phr_isolated(self) -> bool:
        """PHR attacks are *not* blocked: partitioning never touches the
        PHR, so victim history remains readable (returns False)."""
        machine = self.machine
        machine.clear_phr()
        victim_pc = self.relocate(0x0048_0000, 0)
        machine.record_taken_branch(victim_pc, victim_pc + 0x44)
        return machine.phr(0).value == 0
