"""Mitigation strategies (paper Section 10) and their evaluation hooks.

* :mod:`repro.mitigations.phr_flush` -- flush the PHR with 194
  unconditional footprint-free branches at domain switches;
* :mod:`repro.mitigations.phr_randomize` -- inject a small random number
  of random branches instead (cheaper, probabilistic);
* :mod:`repro.mitigations.pht_flush` -- flush the PHTs in software
  (~100k instructions, per the paper's measurement) or with hypothetical
  hardware support;
* :mod:`repro.mitigations.partition` -- Half&Half-style physical
  partitioning of the PHTs between two domains, which stops the PHT
  primitives but -- the paper's key point -- not the PHR ones.
"""

from repro.mitigations.phr_flush import PhrFlushMitigation
from repro.mitigations.phr_randomize import PhrRandomizeMitigation
from repro.mitigations.pht_flush import PhtFlushMitigation, software_flush_cost
from repro.mitigations.partition import HalfAndHalfPartition
from repro.mitigations.secure_predictors import (
    PerDomainPhrTable,
    StbpuCbp,
    machine_with_stbpu,
)

__all__ = [
    "HalfAndHalfPartition",
    "PerDomainPhrTable",
    "PhrFlushMitigation",
    "PhrRandomizeMitigation",
    "PhtFlushMitigation",
    "StbpuCbp",
    "machine_with_stbpu",
    "software_flush_cost",
]
