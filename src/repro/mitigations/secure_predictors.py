"""Proposed secure branch predictor designs (paper Section 10.2).

The paper surveys hardware defenses -- partitioning (BRB [65]),
encryption of indexes/contents (Lee et al. [37], STBPU [79]) -- and makes
a sharp claim:

    "While each of these can be effective at isolating the PHT, they all
    fail to isolate the PHR.  Thus, they are all susceptible to PHR
    Read/Write attacks.  In particular, the PHR Read attack only makes
    use of the PHR and in no way depends on victim PHT entries ...  The
    Extended Read PHR attack does rely on victim PHT data, and would not
    work in its current form."

This module implements an STBPU-style tokenized CBP (each security domain
gets a secret token that re-keys every PHT index and tag) and the paper's
own suggested fix -- a dedicated per-domain PHR table -- so that claim
can be tested primitive by primitive
(``benchmarks/bench_sec10_secure_predictors.py``).
"""

from __future__ import annotations

from typing import Dict

from repro.cpu.cbp import ConditionalBranchPredictor
from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.utils.bits import mask


class StbpuCbp(ConditionalBranchPredictor):
    """A CBP whose lookups are keyed by a per-domain secret token.

    Following STBPU's design, "each software entity receives a unique,
    randomly-generated secret token (ST) that customizes the data
    representations": the token is folded into the branch address before
    any table hashing, so two domains' branches can never alias in the
    base predictor or the tagged tables, whatever their addresses.

    The PHR is *not* part of the predictor state being encrypted -- that
    is precisely the gap the paper exposes.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._active_token = 0

    def set_context(self, token: int) -> None:
        """Install the secret token of the currently running domain."""
        self._active_token = token & mask(48)

    @property
    def active_token(self) -> int:
        """The token in effect."""
        return self._active_token

    def _keyed_pc(self, pc: int) -> int:
        # Spread the token across the bits the hashes consume.
        spread = (self._active_token * 0x9E3779B97F4A7C15) & mask(48)
        return pc ^ spread

    def predict(self, pc: int, phr: PathHistoryRegister):
        return super().predict(self._keyed_pc(pc), phr)

    def update(self, pc: int, phr: PathHistoryRegister, taken: bool,
               prediction=None) -> None:
        super().update(self._keyed_pc(pc), phr, taken, prediction)


def machine_with_stbpu(config=None, tokens: Dict[str, int] = None) -> Machine:  # type: ignore[assignment]
    """A machine whose CBP is the tokenized variant.

    ``tokens`` maps domain labels to secret tokens; use
    ``machine.cbp.set_context(tokens[domain])`` at each domain switch
    (the experiments below do this explicitly).
    """
    from repro.cpu.config import RAPTOR_LAKE

    machine = Machine(RAPTOR_LAKE if config is None else config)
    secure = StbpuCbp(
        history_lengths=machine.config.pht_history_lengths,
        sets=machine.config.pht_sets,
        ways=machine.config.pht_ways,
        counter_bits=machine.config.counter_bits,
        tag_bits=machine.config.pht_tag_bits,
        base_index_bits=machine.config.base_index_bits,
        pc_index_bit=machine.config.pc_index_bit,
    )
    machine.cbp = secure
    return machine


class PerDomainPhrTable:
    """The paper's suggested hardware fix for the PHR attacks.

    "An effective approach could be to implement a dedicated table of
    global histories (PHRs), with each security domain having its own
    designated PHR.  This prevents the sharing of PHRs among different
    security domains."

    The table banks one PHR per domain and swaps the machine's live
    register at each domain switch.
    """

    def __init__(self, machine: Machine, thread: int = 0):
        self.machine = machine
        self.thread = thread
        self._banked: Dict[str, int] = {}
        self._current = "user"

    @property
    def current_domain(self) -> str:
        """The domain whose PHR is live."""
        return self._current

    def switch_to(self, domain: str) -> None:
        """Bank the live PHR and install ``domain``'s."""
        phr = self.machine.phr(self.thread)
        self._banked[self._current] = phr.value
        phr.set_value(self._banked.get(domain, 0))
        self._current = domain


# ----------------------------------------------------------------------
# effectiveness experiments
# ----------------------------------------------------------------------

def stbpu_blocks_pht_aliasing(victim_token: int = 0x1111,
                              attacker_token: int = 0x2222) -> bool:
    """Write_PHT across STBPU domains must fail (paper: PHTs isolated)."""
    machine = machine_with_stbpu()
    phr_value = 0x5A5A_F00D
    pc = 0x0040_AC00

    machine.cbp.set_context(attacker_token)
    from repro.primitives import PhtWriter

    PhtWriter(machine).write(pc, phr_value, taken=True)

    machine.cbp.set_context(victim_token)
    machine.phr(0).set_value(phr_value)
    prediction = machine.cbp.predict(pc, machine.phr(0))
    return not prediction.taken  # the plant must NOT be visible


def stbpu_leaves_read_phr_intact() -> bool:
    """Read PHR against an STBPU machine must still work (paper's claim).

    The attacker's train/test branches run in the attacker's own domain,
    so its token is self-consistent; the victim's PHR state crosses
    domains untouched because STBPU never keys the PHR.
    """
    from repro.isa import ProgramBuilder
    from repro.primitives import PhrReader, VictimHandle
    from repro.cpu.phr import replay_taken_branches

    machine = machine_with_stbpu()
    machine.cbp.set_context(0x7777)  # the attacker's token, used throughout

    builder = ProgramBuilder("victim", base=0x410000)
    builder.mov_imm("rcx", 6)
    builder.label("loop")
    builder.sub("rcx", imm=1, set_flags=True)
    builder.jne("loop")
    builder.ret()
    victim = VictimHandle(machine, builder.build())
    truth = replay_taken_branches(194, victim.taken_branches()).doublets()

    reader = PhrReader(machine, victim)
    result = reader.read(count=12)
    return result.doublets == truth[:12]


def stbpu_blocks_extended_read() -> bool:
    """Extended Read PHR across STBPU domains must fail (paper's claim:
    "would not work in its current form")."""
    from repro.primitives import ExtendedPhrReader, TakenBranch
    from repro.utils.rng import DeterministicRng

    machine = machine_with_stbpu()
    rng = DeterministicRng(0x5E)
    branches = []
    pc = 0x40_0000
    for _ in range(250):
        pc += rng.integer(1, 4000) * 4
        branches.append(TakenBranch(pc, pc + rng.integer(1, 500) * 4, True))

    # Victim trains under its token...
    machine.cbp.set_context(0x1111)
    phr = PathHistoryRegister(machine.config.phr_capacity)
    for branch in branches:
        machine.cbp.observe(branch.pc, phr, True)
        phr.update(branch.pc, branch.target)

    # ...the attacker probes under a different one; the reader's context
    # hooks model the domain switch around each victim re-invocation, so
    # refreshes happen under the victim token and probes under the
    # attacker token -- which can therefore never alias the victim entry.
    reader = ExtendedPhrReader(
        machine,
        rounds=6,
        victim_context=lambda: machine.cbp.set_context(0x1111),
        attacker_context=lambda: machine.cbp.set_context(0x2222),
    )
    result = reader.read(branches)
    truth = PathHistoryRegister(len(branches))
    for branch in branches:
        truth.update(branch.pc, branch.target)
    return not (result.complete and result.doublets == truth.doublets())


def per_domain_phr_blocks_read() -> bool:
    """With banked PHRs, the victim's history never reaches the attacker."""
    machine = Machine()
    table = PerDomainPhrTable(machine)

    table.switch_to("victim")
    for index in range(20):
        pc = 0x0041_0000 + 0x40 * index
        machine.record_taken_branch(pc, pc + 0x44)
    victim_value = machine.phr(0).value

    table.switch_to("attacker")
    attacker_view = machine.phr(0).value
    return attacker_view == 0 and victim_value != 0


def per_domain_phr_preserves_victim_state() -> bool:
    """Banking must be functional: the victim gets its own history back."""
    machine = Machine()
    table = PerDomainPhrTable(machine)
    table.switch_to("victim")
    machine.record_taken_branch(0x0041_0000, 0x0041_0044)
    saved = machine.phr(0).value
    table.switch_to("attacker")
    machine.record_taken_branch(0x0051_0000, 0x0051_0044)
    table.switch_to("victim")
    return machine.phr(0).value == saved
