"""PHR randomization (paper Section 10.1, the "less costly" option).

"Less costly, we could add a small, non-deterministic number of random
branches into the PHR during context switching.  This randomization of
the PHR value would prevent attackers from obtaining the same PHR upon
repeated calls to the victim" -- at the price of remaining brute-forceable
"but likely requiring orders of magnitude more time".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.utils.rng import DeterministicRng

#: Randomizer branch region (any attacker-unmapped code range works).
RANDOMIZER_BASE = 0x7700_0000


@dataclass
class RandomizeCost:
    """Cost accounting for one randomization pass."""

    branches: int


class PhrRandomizeMitigation:
    """Injects 1..``max_branches`` random-footprint branches per switch."""

    def __init__(self, machine: Machine, max_branches: int = 8,
                 rng: DeterministicRng = None):  # type: ignore[assignment]
        if max_branches < 1:
            raise ValueError("need at least one randomizing branch")
        self.machine = machine
        self.max_branches = max_branches
        self.rng = rng if rng is not None else DeterministicRng(0xA11CE)
        self.switches = 0

    def on_domain_switch(self, thread: int = 0) -> RandomizeCost:
        """Inject the random branch burst (call at every domain switch)."""
        count = self.rng.integer(1, self.max_branches)
        for _ in range(count):
            pc = RANDOMIZER_BASE + self.rng.integer(0, 0xFFFF)
            target = pc + 4 + 4 * self.rng.integer(0, 0x3FF)
            self.machine.record_taken_branch(pc, target, thread=thread)
        self.switches += 1
        return RandomizeCost(branches=count)

    def repeated_reads_agree(self, run_victim, reads: int = 4,
                             thread: int = 0) -> bool:
        """Whether repeated victim invocations leave identical PHR values.

        The Read PHR primitive requires the victim to produce the same
        PHR on every call; with randomization in the switch path the
        observed values diverge, which is exactly how the mitigation
        frustrates the attack.  ``run_victim`` is a zero-argument callable
        that invokes the victim once (the mitigation hook runs before it).
        """
        observed = set()
        for _ in range(reads):
            self.machine.clear_phr(thread)
            self.on_domain_switch(thread=thread)
            run_victim()
            observed.add(self.machine.phr(thread).value)
        return len(observed) == 1
