"""PHR flushing via unconditional branches (paper Section 10.1).

"The most straightforward software-based solution for mitigating the
(Unlimited) Read PHR is to flush the PHR using 194 unconditional direct
branches during context switching between different security domains.
Because unconditional direct branches do not interact with the PHTs at
all, this prevents the attacker from exploiting the PHTs as a side
channel to reconstruct the PHR beyond 194."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.machine import Machine
from repro.primitives.macros import PhrMacros


@dataclass
class FlushCost:
    """Cost accounting for one flush."""

    branches: int
    instructions: int


class PhrFlushMitigation:
    """Applies the 194-branch PHR flush at domain switches."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.macros = PhrMacros(machine)
        self.flushes = 0

    def on_domain_switch(self, thread: int = 0) -> FlushCost:
        """Flush the PHR of ``thread`` (call at every domain switch).

        Uses the ``Clear_PHR`` macro -- ``capacity`` unconditional taken
        branches with zero footprints -- so the flush itself leaves no
        PHT residue for the attacker to mine.
        """
        self.macros.apply_clear(thread=thread)
        self.flushes += 1
        capacity = self.machine.config.phr_capacity
        return FlushCost(branches=capacity, instructions=capacity)

    def read_phr_leaks(self, thread: int = 0) -> bool:
        """Whether any victim history survives in the PHR post-flush.

        The flush shifts every victim doublet out, so the register must
        read as zero; a Read PHR after the switch then recovers only
        zeros (and the Extended Read PHR cannot bootstrap, because it
        needs the physical PHR as its anchor and the flushing branches
        are invisible to the PHTs).
        """
        return self.machine.phr(thread).value != 0
