"""PHT flushing (paper Section 10.2).

"Flushing the PHTs in software requires around 100k instructions (mostly
branches) -- we have run this.  This is prohibitively expensive for all
but the most security-critical scenarios.  Better would be hardware
support for flushing."

The software cost model below reconstructs that number from the table
geometry: every entry of the base predictor and of each tagged table must
be re-trained to a neutral state, which takes one saturating-counter's
worth of branch executions per entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine


@dataclass
class PhtFlushCost:
    """Instruction cost of one software PHT flush."""

    base_entries: int
    tagged_entries: int
    branches_per_entry: int

    @property
    def total_instructions(self) -> int:
        return (self.base_entries + self.tagged_entries) * self.branches_per_entry


def software_flush_cost(config: MachineConfig) -> PhtFlushCost:
    """Instruction count to flush every CBP entry in software.

    With the paper's reconstructed geometry (2^13-entry base predictor,
    three 512-set x 4-way tagged tables, 3-bit counters needing up to
    2^3 = 8 trainings to saturate), this lands at ~115k instructions --
    the paper reports "around 100k".
    """
    base_entries = 1 << config.base_index_bits
    tagged_entries = (len(config.pht_history_lengths)
                      * config.pht_sets * config.pht_ways)
    return PhtFlushCost(
        base_entries=base_entries,
        tagged_entries=tagged_entries,
        branches_per_entry=1 << config.counter_bits,
    )


class PhtFlushMitigation:
    """Flushes the CBP at domain switches (hardware-assisted model)."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.flushes = 0

    def on_domain_switch(self) -> PhtFlushCost:
        """Flush base predictor and all tagged tables."""
        self.machine.flush_cbp()
        self.flushes += 1
        return software_flush_cost(self.machine.config)

    def pht_state_survives(self) -> bool:
        """Whether any trained state remains after the flush."""
        return self.machine.cbp.populated_entries() != 0
