"""The differential harness: run one program through every twin pair.

Arms per program (all on fresh machines of the program's preset):

``reference``
    ``engine='reference'`` -- the isinstance-dispatch interpreter twin,
    full trace.  This is the baseline digest.
``fast``
    ``engine='fast'``, ``trace='full'`` -- the predecoded threaded-code
    twin.  Compared bit-for-bit against ``reference``: registers, flags,
    call stack, memory, dynamic branch trace, perf counters, PHR value,
    every predictor structure, and the per-commit branch-resolution
    stream captured through :attr:`Machine.branch_observer`.
``fast/branches`` and ``fast/none``
    The reduced trace modes.  Everything except the materialised trace
    must match the ``fast`` arm exactly; ``branches`` must additionally
    equal the conditional subsequence of the full trace, ``none`` must
    be empty.
``snapshot``
    Train a machine with one run, checkpoint, run again (digest A),
    restore, run again (digest B).  A and B must be bit-identical --
    the snapshot/restore/replay contract the trial harness rests on.
``batch-twin``
    The vectorized :class:`~repro.batch.BatchMachine` against scalar
    non-speculative runs: ``run_batch`` over two replicas must
    reproduce each scalar ``Machine.run(speculate=False)`` exactly --
    trace, perf delta, PHR, memory, registers, and the full
    ``extract(i)`` machine snapshot.  Skipped when numpy is missing,
    when the preset falls outside :func:`repro.batch.supports_config`,
    or when a ``machine_mutator`` is installed (the mutator perturbs
    scalar machines only, so the comparison would diverge by design).

The invariant oracle (:mod:`repro.fuzz.oracle`) rides along inside every
arm, raising independently of any twin comparison.

A ``machine_mutator`` -- applied to every machine of the *fast* arms but
never to the reference arm -- exists for the mutation-smoke self-test:
installing a deliberate predictor perturbation there must make the
harness report a divergence, proving the fuzzer is not vacuously green.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.aes.victim import AesVictim
from repro.cpu.config import RAPTOR_LAKE
from repro.cpu.machine import Machine
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import InvariantOracle, InvariantViolation
from repro.isa.interpreter import CpuState
from repro.isa.memory import Memory
from repro.utils.rng import DeterministicRng

#: Default stride (in commits) of the periodic structural-invariant walk.
DEFAULT_ORACLE_STRIDE = 32

#: A mutator receives the freshly built fast-arm machine before the run.
MachineMutator = Callable[[Machine], None]


@dataclass(frozen=True)
class Divergence:
    """One mismatch between two arms (or an oracle violation)."""

    arm: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.arm}] {self.kind}: {self.detail}"


@dataclass
class ArmDigest:
    """Everything observable from one arm's run."""

    regs: dict
    flags: tuple
    call_stack: Tuple[int, ...]
    memory: dict
    trace: tuple
    instructions: int
    halted: bool
    perf: object
    phr_value: int
    fingerprint: tuple
    commits: Tuple[tuple, ...]
    oracle_violation: Optional[str] = None


#: Component names of a :func:`machine_fingerprint` tuple, in order
#: (used to label which component diverged).
FINGERPRINT_NAMES = ("model", "cbp", "btb", "ibp", "cache", "perf",
                     "threads", "ibrs")


def machine_fingerprint(machine: Machine) -> tuple:
    """A deep structural digest of all snapshot-covered machine state.

    Family-generic: the direction predictor contributes through its
    ``snapshot()`` (sparse tables for every built-in family) and the
    predictor-family id leads the tuple, so machines of different
    families can never fingerprint equal.
    """
    perf = machine.perf.snapshot()
    perf_digest = tuple(
        sorted((name, tuple(sorted(value.items()))
                if isinstance(value, dict) else value)
               for name, value in vars(perf).items())
    )
    return (
        machine.model.model_id,
        machine.cbp.snapshot(),
        machine.btb.snapshot(),
        machine.ibp.snapshot(),
        machine.cache.snapshot(),
        perf_digest,
        tuple((context.phr.value, context.ras.snapshot(), context.domain)
              for context in machine.threads),
        machine.ibrs_enabled,
    )


def _provision_memory(fuzz_program: FuzzProgram) -> Memory:
    memory = Memory()
    for address, value in fuzz_program.initial_memory:
        memory.write(address, 1, value)
    return memory


def run_arm(
    fuzz_program: FuzzProgram,
    engine: str,
    trace: str = "full",
    machine_mutator: Optional[MachineMutator] = None,
    oracle_stride: int = DEFAULT_ORACLE_STRIDE,
    machine: Optional[Machine] = None,
) -> ArmDigest:
    """Run one arm on a fresh (or supplied) machine and digest everything."""
    if machine is None:
        machine = Machine(fuzz_program.machine_config)
        if machine_mutator is not None:
            machine_mutator(machine)
    oracle = InvariantOracle(machine, stride=oracle_stride)
    commits: List[tuple] = []
    thread = machine.threads[0]
    perf = machine.perf

    def observer(pc: int, kind, taken: bool) -> None:
        commits.append((pc, kind.value, taken, thread.phr.value,
                        perf.conditional_mispredictions))
        oracle.after_commit(pc)

    machine.branch_observer = observer
    state = CpuState()
    memory = _provision_memory(fuzz_program)
    violation: Optional[str] = None
    try:
        result = machine.run(
            fuzz_program.program,
            state=state,
            memory=memory,
            max_instructions=fuzz_program.max_instructions,
            engine=engine,
            trace=trace,
        )
        oracle.final_check()
    except InvariantViolation as exc:
        violation = str(exc)
        result = None
    finally:
        machine.branch_observer = None

    if result is None:
        return ArmDigest(
            regs={}, flags=(), call_stack=(), memory={}, trace=(),
            instructions=0, halted=False, perf=machine.perf.snapshot(),
            phr_value=thread.phr.value,
            fingerprint=machine_fingerprint(machine),
            commits=tuple(commits), oracle_violation=violation,
        )
    flags = result.state.flags
    return ArmDigest(
        regs={reg: value for reg, value in result.state.regs.items()},
        flags=(flags.zero, flags.sign, flags.carry),
        call_stack=tuple(result.state.call_stack),
        memory=memory.snapshot(),
        trace=tuple(result.execution.trace),
        instructions=result.execution.instructions,
        halted=result.execution.halted,
        perf=result.perf,
        phr_value=result.phr_value,
        fingerprint=machine_fingerprint(machine),
        commits=tuple(commits),
    )


def _first_difference(label: str, a: tuple, b: tuple) -> str:
    """Locate the first differing element of two sequences."""
    for position, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return (f"{label}[{position}]: {left!r} != {right!r} "
                    f"(lengths {len(a)}/{len(b)})")
    return f"{label} lengths differ: {len(a)} != {len(b)}"


def _compare(arm: str, baseline: ArmDigest, candidate: ArmDigest,
             compare_trace: bool = True) -> List[Divergence]:
    """Field-by-field digest comparison with first-mismatch reporting."""
    out: List[Divergence] = []

    def check(kind: str, left, right, sequence: bool = False) -> None:
        if left != right:
            if sequence:
                out.append(Divergence(arm, kind,
                                      _first_difference(kind, left, right)))
            else:
                out.append(Divergence(arm, kind, f"{left!r} != {right!r}"))

    for digest in (baseline, candidate):
        if digest.oracle_violation:
            out.append(Divergence(arm, "invariant", digest.oracle_violation))
    if out:
        return out

    check("registers", baseline.regs, candidate.regs)
    check("flags", baseline.flags, candidate.flags)
    check("call-stack", baseline.call_stack, candidate.call_stack)
    check("memory", baseline.memory, candidate.memory)
    check("instructions", baseline.instructions, candidate.instructions)
    check("halted", baseline.halted, candidate.halted)
    check("perf", baseline.perf, candidate.perf)
    check("phr", baseline.phr_value, candidate.phr_value)
    check("commit-stream", baseline.commits, candidate.commits,
          sequence=True)
    if compare_trace:
        check("trace", baseline.trace, candidate.trace, sequence=True)
    if baseline.fingerprint != candidate.fingerprint:
        for name, left, right in zip(FINGERPRINT_NAMES,
                                     baseline.fingerprint,
                                     candidate.fingerprint):
            if left != right:
                out.append(Divergence(arm, f"machine.{name}",
                                      f"{left!r} != {right!r}"))
    return out


def check_program(
    fuzz_program: FuzzProgram,
    machine_mutator: Optional[MachineMutator] = None,
    oracle_stride: int = DEFAULT_ORACLE_STRIDE,
) -> List[Divergence]:
    """Run every arm for one program; return all divergences found."""
    reference = run_arm(fuzz_program, engine="reference",
                        oracle_stride=oracle_stride)
    fast = run_arm(fuzz_program, engine="fast", trace="full",
                   machine_mutator=machine_mutator,
                   oracle_stride=oracle_stride)
    divergences = _compare("fast-vs-reference", reference, fast)

    for mode in ("branches", "none"):
        arm = run_arm(fuzz_program, engine="fast", trace=mode,
                      machine_mutator=machine_mutator,
                      oracle_stride=oracle_stride)
        name = f"trace-{mode}"
        divergences += _compare(name, fast, arm, compare_trace=False)
        if arm.oracle_violation is None:
            if mode == "branches":
                conditionals = tuple(r for r in fast.trace
                                     if r.kind.value == "conditional")
                if arm.trace != conditionals:
                    divergences.append(Divergence(
                        name, "trace",
                        _first_difference("trace", conditionals, arm.trace)))
            elif arm.trace:
                divergences.append(Divergence(
                    name, "trace",
                    f"trace='none' materialised {len(arm.trace)} records"))

    divergences += _check_snapshot_replay(fuzz_program, machine_mutator,
                                          oracle_stride)
    divergences += _check_snapshot_serialization(fuzz_program,
                                                 machine_mutator)
    divergences += _check_prefix_replay(fuzz_program, fast, machine_mutator,
                                        oracle_stride)
    divergences += _check_batch_twin(fuzz_program, machine_mutator)
    divergences += _check_shared_trace(fuzz_program, machine_mutator)
    return divergences


def check_program_backends(
    fuzz_program: FuzzProgram,
    backends: Optional[Tuple[str, ...]] = None,
    machine_mutator: Optional[MachineMutator] = None,
    oracle_stride: int = DEFAULT_ORACLE_STRIDE,
) -> List[Divergence]:
    """Run the core twin arms once per non-default predictor family.

    The full :func:`check_program` battery runs on the program's preset
    (the ``intel-cbp`` family).  This pass rebuilds the same program
    with each requested family
    (:meth:`~repro.fuzz.generator.FuzzProgram.with_predictor_model`) and
    repeats the arms that are family-generic: reference-vs-fast engine
    equivalence, snapshot/restore replay, snapshot wire-format
    round-trip, and the vectorized batch-twin / shared-trace arms
    (every registered family has a batch backend, so the bit-identity
    contract is fuzzed per family) -- each with the invariant oracle
    riding along.  Arm labels are prefixed ``<model-id>:`` so a corpus
    reproducer names the family it failed under.  ``backends=None``
    runs every registered family except the program's own.
    """
    from repro.cpu.model import model_ids

    if backends is None:
        backends = tuple(model_ids())
    own = fuzz_program.machine_config.predictor_model
    divergences: List[Divergence] = []
    for model_id in backends:
        if model_id == own:
            continue
        variant = fuzz_program.with_predictor_model(model_id)
        prefix = f"{model_id}:"
        reference = run_arm(variant, engine="reference",
                            oracle_stride=oracle_stride)
        fast = run_arm(variant, engine="fast", trace="full",
                       machine_mutator=machine_mutator,
                       oracle_stride=oracle_stride)
        divergences += _compare(f"{prefix}fast-vs-reference",
                                reference, fast)
        divergences += _check_snapshot_replay(
            variant, machine_mutator, oracle_stride, arm_prefix=prefix)
        divergences += _check_snapshot_serialization(
            variant, machine_mutator, arm_prefix=prefix)
        divergences += _check_batch_twin(
            variant, machine_mutator, arm_prefix=prefix)
        divergences += _check_shared_trace(
            variant, machine_mutator, arm_prefix=prefix)
    return divergences


def _check_batch_twin(
    fuzz_program: FuzzProgram,
    machine_mutator: Optional[MachineMutator],
    arm_prefix: str = "",
) -> List[Divergence]:
    """The batch engine against scalar non-speculative twins.

    Two replicas run the same program through ``run_batch`` while two
    fresh scalar machines run it with ``speculate=False``; every
    observable -- trace, perf delta, PHR, architectural memory and
    registers, and the extracted full machine snapshot -- must match
    bit for bit.  This is the fuzz half of the batch engine's
    bit-identity contract (the property half lives in
    ``tests/test_batch_equivalence.py``).
    """
    if machine_mutator is not None:
        return []  # mutators perturb scalar machines only
    try:
        from repro.batch import BatchMachine, supports_config
    except ImportError:
        return []  # numpy not available: the batch engine is optional
    config = fuzz_program.machine_config
    if not supports_config(config):
        return []

    n = 2
    scalar_runs = []
    for _ in range(n):
        machine = Machine(config)
        memory = _provision_memory(fuzz_program)
        result = machine.run(
            fuzz_program.program, memory=memory,
            max_instructions=fuzz_program.max_instructions,
            speculate=False, trace="full")
        scalar_runs.append((result, memory, machine.snapshot()))

    batch = BatchMachine(n, config)
    memories = [_provision_memory(fuzz_program) for _ in range(n)]
    results = batch.run_batch(
        fuzz_program.program, memories,
        max_instructions=fuzz_program.max_instructions, trace="full")

    divergences: List[Divergence] = []
    for i in range(n):
        scalar_result, scalar_memory, scalar_snap = scalar_runs[i]
        got = results[i]
        arm = f"{arm_prefix}batch-twin[{i}]"

        def check(kind: str, left, right, arm=arm) -> None:
            if left != right:
                divergences.append(
                    Divergence(arm, kind, f"{left!r} != {right!r}"))

        check("trace", tuple(got.trace), tuple(scalar_result.trace))
        check("perf", got.perf, scalar_result.perf)
        check("phr", got.phr_value, scalar_result.phr_value)
        check("instructions", got.execution.instructions,
              scalar_result.execution.instructions)
        check("registers", dict(got.state.regs),
              dict(scalar_result.state.regs))
        check("memory", memories[i].snapshot(), scalar_memory.snapshot())
        check("snapshot", batch.extract(i), scalar_snap)
    return divergences


def _check_shared_trace(
    fuzz_program: FuzzProgram,
    machine_mutator: Optional[MachineMutator],
    arm_prefix: str = "",
) -> List[Divergence]:
    """Trace-once/replay-many against scalar twins, bit for bit.

    Two sub-arms of the phase-1 elision machinery:

    * ``shared-trace[i]`` -- ``run_batch(shared_input=...)`` runs phase 1
      once and replays the committed event stream into every replica;
      each replica must still match a fresh scalar ``speculate=False``
      run on identically-provisioned memory.
    * ``cached-trace[i]`` -- the same batch run twice through one
      :class:`~repro.service.store.TraceCache`: the warm pass (every
      replica a cache hit, phase 1 fully skipped) must match the scalar
      twins just as exactly, and the cache must report zero divergences.
    """
    if machine_mutator is not None:
        return []  # mutators perturb scalar machines only
    try:
        from repro.batch import BatchMachine, supports_config
    except ImportError:
        return []  # numpy not available: the batch engine is optional
    from repro.service.store import TraceCache

    config = fuzz_program.machine_config
    if not supports_config(config):
        return []

    n = 2
    divergences: List[Divergence] = []

    def compare(arm: str, got, result_memory, scalar) -> None:
        scalar_result, scalar_memory, scalar_snap = scalar

        def check(kind: str, left, right) -> None:
            if left != right:
                divergences.append(
                    Divergence(arm, kind, f"{left!r} != {right!r}"))

        check("trace", tuple(got.trace), tuple(scalar_result.trace))
        check("perf", got.perf, scalar_result.perf)
        check("phr", got.phr_value, scalar_result.phr_value)
        check("instructions", got.execution.instructions,
              scalar_result.execution.instructions)
        check("registers", dict(got.state.regs),
              dict(scalar_result.state.regs))
        check("memory", result_memory.snapshot(), scalar_memory.snapshot())

    def scalar_run():
        machine = Machine(config)
        memory = _provision_memory(fuzz_program)
        result = machine.run(
            fuzz_program.program, memory=memory,
            max_instructions=fuzz_program.max_instructions,
            speculate=False, trace="full")
        return result, memory, machine.snapshot()

    scalars = [scalar_run() for _ in range(n)]

    # Sub-arm 1: one phase-1 run broadcast to every replica.
    batch = BatchMachine(n, config)
    shared_memory = _provision_memory(fuzz_program)
    results = batch.run_batch(
        fuzz_program.program,
        max_instructions=fuzz_program.max_instructions, trace="full",
        shared_input=shared_memory)
    for i in range(n):
        compare(f"{arm_prefix}shared-trace[{i}]", results[i], shared_memory,
                scalars[i])
        snap = batch.extract(i)
        if snap != scalars[i][2]:
            divergences.append(Divergence(
                f"{arm_prefix}shared-trace[{i}]", "snapshot",
                "extracted snapshot differs from scalar twin"))

    # Sub-arm 2: cold capture then warm replay through the trace cache.
    cache = TraceCache()
    for label in ("cold", "warm"):
        batch = BatchMachine(n, config)
        memories = [_provision_memory(fuzz_program) for _ in range(n)]
        try:
            results = batch.run_batch(
                fuzz_program.program, memories,
                max_instructions=fuzz_program.max_instructions,
                trace="full", trace_cache=cache)
        except Exception as exc:  # noqa: BLE001 -- arm must not crash fuzz
            divergences.append(Divergence(
                f"{arm_prefix}cached-trace-{label}", "crash",
                f"{type(exc).__name__}: {exc}"))
            return divergences
        for i in range(n):
            compare(f"{arm_prefix}cached-trace-{label}[{i}]", results[i],
                    memories[i], scalars[i])
            snap = batch.extract(i)
            if snap != scalars[i][2]:
                divergences.append(Divergence(
                    f"{arm_prefix}cached-trace-{label}[{i}]", "snapshot",
                    "extracted snapshot differs from scalar twin"))
    if cache.stats.divergences:
        divergences.append(Divergence(
            f"{arm_prefix}cached-trace", "cache",
            f"trace cache reported {cache.stats.divergences} "
            f"divergent entries"))
    return divergences


def _check_snapshot_replay(
    fuzz_program: FuzzProgram,
    machine_mutator: Optional[MachineMutator],
    oracle_stride: int,
    arm_prefix: str = "",
) -> List[Divergence]:
    """Train, checkpoint, replay twice around a restore; arms must match."""
    machine = Machine(fuzz_program.machine_config)
    if machine_mutator is not None:
        machine_mutator(machine)
    machine.run(fuzz_program.program,
                memory=_provision_memory(fuzz_program),
                max_instructions=fuzz_program.max_instructions,
                trace="none")
    snap = machine.snapshot()
    first = run_arm(fuzz_program, engine="fast", trace="none",
                    oracle_stride=oracle_stride, machine=machine)
    machine.restore(snap)
    second = run_arm(fuzz_program, engine="fast", trace="none",
                     oracle_stride=oracle_stride, machine=machine)
    return _compare(f"{arm_prefix}snapshot-replay", first, second,
                    compare_trace=False)


def _check_snapshot_serialization(
    fuzz_program: FuzzProgram,
    machine_mutator: Optional[MachineMutator],
    arm_prefix: str = "",
) -> List[Divergence]:
    """The versioned snapshot wire format, against fuzz-trained state.

    Train a machine with one full run, serialize its snapshot through
    :meth:`MachineSnapshot.to_bytes`, deserialize, and demand (a) the
    round-tripped snapshot compares equal to the live one, and (b) a
    fresh machine restored from the *deserialized* snapshot is
    structurally bit-identical to the trained machine.  This is the
    disk tier's contract: a checkpoint served from
    :class:`repro.service.store.SnapshotStore`'s spill directory must
    be indistinguishable from the live capture it spilled.
    """
    from repro.cpu.machine import MachineSnapshot
    from repro.cpu.serialize import SnapshotFormatError

    machine = Machine(fuzz_program.machine_config)
    if machine_mutator is not None:
        machine_mutator(machine)
    machine.run(fuzz_program.program,
                memory=_provision_memory(fuzz_program),
                max_instructions=fuzz_program.max_instructions,
                trace="none")
    snap = machine.snapshot()
    arm = f"{arm_prefix}snapshot-serialization"
    try:
        restored = MachineSnapshot.from_bytes(snap.to_bytes())
    except SnapshotFormatError as exc:
        return [Divergence(arm, "format", str(exc))]
    if restored != snap:
        return [Divergence(arm, "round-trip",
                           "deserialized snapshot != live snapshot")]

    twin = Machine(fuzz_program.machine_config)
    twin.restore(restored)
    left = machine_fingerprint(machine)
    right = machine_fingerprint(twin)
    if left == right:
        return []
    return [Divergence(arm, f"machine.{name}", f"{a!r} != {b!r}")
            for name, a, b in zip(FINGERPRINT_NAMES, left, right) if a != b]


def _check_prefix_replay(
    fuzz_program: FuzzProgram,
    straight: ArmDigest,
    machine_mutator: Optional[MachineMutator],
    oracle_stride: int,
) -> List[Divergence]:
    """The :mod:`repro.replay` contract at whole-program granularity.

    Splits the program's dynamic instruction stream in half: run the
    prefix (``on_limit='stop'``), checkpoint machine + CPU state +
    memory, run the suffix to completion, and compare the stitched
    digest -- architectural state, perf counters, committed branch
    stream, full trace -- against the straight one-shot execution
    (``prefix-replay`` arm).  Then restore the checkpoint and run the
    suffix a second time; both suffix runs must be bit-identical
    (``suffix-replay`` arm), which is exactly what the replay engine's
    restore-per-guess batching assumes.
    """
    if straight.oracle_violation is not None:
        return []  # already reported; a split run would just repeat it
    total = straight.instructions
    split = total // 2
    if split == 0 or split >= total:
        return []

    machine = Machine(fuzz_program.machine_config)
    if machine_mutator is not None:
        machine_mutator(machine)
    oracle = InvariantOracle(machine, stride=oracle_stride)
    commits: List[tuple] = []
    thread = machine.threads[0]
    perf = machine.perf

    def observer(pc: int, kind, taken: bool) -> None:
        commits.append((pc, kind.value, taken, thread.phr.value,
                        perf.conditional_mispredictions))
        oracle.after_commit(pc)

    def digest(result, memory, trace, commit_slice) -> ArmDigest:
        flags = result.execution.state.flags
        return ArmDigest(
            regs=dict(result.execution.state.regs),
            flags=(flags.zero, flags.sign, flags.carry),
            call_stack=tuple(result.execution.state.call_stack),
            memory=memory.snapshot(),
            trace=trace,
            instructions=result.execution.instructions,
            halted=result.execution.halted,
            perf=result.perf,
            phr_value=result.phr_value,
            fingerprint=machine_fingerprint(machine),
            commits=commit_slice,
        )

    machine.branch_observer = observer
    state = CpuState()
    memory = _provision_memory(fuzz_program)
    before = perf.snapshot()
    try:
        prefix = machine.run(
            fuzz_program.program, state=state, memory=memory,
            max_instructions=split, trace="full", on_limit="stop")
        if prefix.execution.halted or prefix.execution.next_pc is None:
            return [Divergence("prefix-replay", "limit",
                               f"prefix halted within {split} of "
                               f"{total} instructions")]
        # Checkpoint everything the suffix touches.
        snap = machine.snapshot()
        state_copy = state.copy()
        memory_copy = memory.clone()
        prefix_commits = len(commits)

        suffix_budget = fuzz_program.max_instructions - split
        first = machine.run(
            fuzz_program.program, state=state, memory=memory,
            entry=prefix.execution.next_pc,
            max_instructions=suffix_budget, trace="full")
        oracle.final_check()
        stitched = digest(first, memory, trace=tuple(
            prefix.execution.trace) + tuple(first.execution.trace),
            commit_slice=tuple(commits))
        stitched.instructions = split + first.execution.instructions
        stitched.perf = perf.delta(before)
        divergences = _compare("prefix-replay", straight, stitched)

        first_digest = digest(first, memory,
                              trace=tuple(first.execution.trace),
                              commit_slice=tuple(commits[prefix_commits:]))
        machine.restore(snap)
        replay_start = len(commits)
        second = machine.run(
            fuzz_program.program, state=state_copy, memory=memory_copy,
            entry=prefix.execution.next_pc,
            max_instructions=suffix_budget, trace="full")
        oracle.final_check()
        second_digest = digest(second, memory_copy,
                               trace=tuple(second.execution.trace),
                               commit_slice=tuple(commits[replay_start:]))
        divergences += _compare("suffix-replay", first_digest, second_digest)
        return divergences
    except InvariantViolation as exc:
        return [Divergence("prefix-replay", "invariant", str(exc))]
    finally:
        machine.branch_observer = None


# ----------------------------------------------------------------------
# the AES data-path twins
# ----------------------------------------------------------------------

def check_aes_data_paths(rng: DeterministicRng) -> List[Divergence]:
    """One random AES block through the fast and reference data paths.

    The control-flow skeleton is identical by construction; the arms must
    agree on the ciphertext *and* on every microarchitectural observable
    (trace, perf counters, predictor state) since the data paths also
    share the memory-traffic contract (PyOp block I/O bypasses the cache
    in both).
    """
    key = rng.bytes(rng.choice((16, 24, 32)))
    plaintext = rng.bytes(16)
    digests = {}
    ciphertexts = {}
    for data_path in ("fast", "reference"):
        victim = AesVictim(key, data_path=data_path)
        machine = Machine(RAPTOR_LAKE)
        oracle = InvariantOracle(machine, stride=DEFAULT_ORACLE_STRIDE)
        machine.branch_observer = oracle
        memory = Memory()
        victim.provision(memory, plaintext)
        try:
            result = machine.run(victim.program, memory=memory)
            oracle.final_check()
        except InvariantViolation as exc:
            return [Divergence(f"aes-{data_path}", "invariant", str(exc))]
        finally:
            machine.branch_observer = None
        ciphertexts[data_path] = victim.read_ciphertext(memory)
        flags = result.state.flags
        digests[data_path] = ArmDigest(
            regs=dict(result.state.regs),
            flags=(flags.zero, flags.sign, flags.carry),
            call_stack=tuple(result.state.call_stack),
            memory=memory.snapshot(),
            trace=tuple(result.execution.trace),
            instructions=result.execution.instructions,
            halted=result.execution.halted,
            perf=result.perf,
            phr_value=result.phr_value,
            fingerprint=machine_fingerprint(machine),
            commits=(),
        )
    divergences = _compare("aes-data-path", digests["reference"],
                           digests["fast"])
    if ciphertexts["fast"] != ciphertexts["reference"]:
        divergences.append(Divergence(
            "aes-data-path", "ciphertext",
            f"{ciphertexts['fast'].hex()} != "
            f"{ciphertexts['reference'].hex()}"))
    return divergences
