"""Delta-debugging shrinker for failing fuzz programs.

Shrinking happens at the *shape* level, never the raw instruction list:
shapes are self-contained fragments, so any subset of them still
assembles into a well-formed, terminating program, which keeps the
classic ddmin algorithm sound without any repair logic.  A final pass
then minimises *within* the surviving shapes (fewer loop iterations,
shallower call chains, shorter jump runs) by attempting reduced copies
while the failure persists.

The predicate re-runs the full differential harness, so a shrunk
reproducer fails for the same observable reason the original did --
whatever twin pair or invariant first diverged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Sequence, Tuple

from repro.fuzz.generator import (
    CallChainShape,
    FuzzProgram,
    JumpChainShape,
    LoopShape,
    Shape,
    with_shapes,
)

#: Predicate: does this candidate program still fail?
FailsPredicate = Callable[[FuzzProgram], bool]


def ddmin_positions(
    positions: Sequence[int],
    fails: Callable[[Tuple[int, ...]], bool],
) -> Tuple[int, ...]:
    """Classic ddmin over a position list.

    ``fails(subset)`` must be deterministic; ``positions`` itself must
    fail.  Returns a (locally) 1-minimal failing subset: removing any
    single remaining element makes the failure disappear.
    """
    current = tuple(positions)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def _reduced_variants(shape: Shape) -> List[Shape]:
    """Strictly smaller copies of ``shape``, most aggressive first."""
    variants: List[Shape] = []
    if isinstance(shape, LoopShape) and shape.iterations > 1:
        variants.append(replace(shape, iterations=1))
        if shape.iterations > 2:
            variants.append(replace(shape, iterations=shape.iterations // 2))
    if isinstance(shape, CallChainShape) and shape.depth > 1:
        variants.append(replace(shape, depth=1))
        if shape.depth > 2:
            variants.append(replace(shape, depth=shape.depth // 2))
    if isinstance(shape, JumpChainShape) and shape.count > 1:
        variants.append(replace(shape, count=1))
    return variants


def shrink(fuzz_program: FuzzProgram,
           fails: FailsPredicate) -> FuzzProgram:
    """Shrink a failing program to a (locally) minimal reproducer.

    ``fails(candidate)`` re-runs the harness; ``fuzz_program`` itself
    must satisfy it.  The result carries its surviving shape positions
    in :attr:`FuzzProgram.kept` so it can be rebuilt from
    ``(seed, index, kept, profile)`` alone -- within-shape reductions
    excepted, which the corpus writer embeds explicitly.
    """
    positions = (tuple(fuzz_program.kept)
                 if fuzz_program.kept is not None
                 else tuple(range(len(fuzz_program.shapes))))
    by_position = dict(zip(positions, fuzz_program.shapes))

    def fails_subset(subset: Tuple[int, ...]) -> bool:
        candidate = with_shapes(
            fuzz_program, [by_position[p] for p in subset], subset)
        return fails(candidate)

    minimal = ddmin_positions(positions, fails_subset)
    shapes = [by_position[p] for p in minimal]

    # Within-shape minimisation: accept any reduced copy that still fails.
    for slot, shape in enumerate(shapes):
        for variant in _reduced_variants(shape):
            candidate_shapes = list(shapes)
            candidate_shapes[slot] = variant
            candidate = with_shapes(fuzz_program, candidate_shapes, minimal)
            if fails(candidate):
                shapes = candidate_shapes
                break

    return with_shapes(fuzz_program, shapes, minimal)
