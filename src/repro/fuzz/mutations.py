"""Named machine mutators for fuzzer self-tests and corpus reproducers.

A mutator deliberately perturbs one predictor update rule on the *fast*
arms of the differential harness (the reference arm always runs clean).
They exist to prove the fuzzer is not vacuously green: with a mutator
installed the harness must report a divergence within a few programs,
and the shrinker must reduce the trigger to a handful of instructions.

Mutators are addressed by name so that persisted reproducers and the
``--mutate`` CLI self-test mode stay picklable across worker processes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cpu.machine import Machine


def _pht_train_invert(machine: Machine) -> None:
    """Invert the trained direction for branches whose PC bit 6 is set.

    Prediction and misprediction accounting still observe the real
    outcome; only the counter/allocation training is wrong -- the kind
    of subtle update-rule divergence the fuzzer exists to surface.
    """
    machine.cbp.train_fault = lambda pc, taken: (not taken
                                                if pc & 0x40 else taken)


def _pht_train_stuck_taken(machine: Machine) -> None:
    """Train every conditional branch as taken regardless of outcome."""
    machine.cbp.train_fault = lambda pc, taken: True


MUTATORS: Dict[str, Callable[[Machine], None]] = {
    "pht-train-invert": _pht_train_invert,
    "pht-train-stuck-taken": _pht_train_stuck_taken,
}


def get_mutator(name: Optional[str]) -> Optional[Callable[[Machine], None]]:
    """Resolve a mutator name (``None``/``"none"`` -> no mutation)."""
    if name is None or name == "none":
        return None
    try:
        return MUTATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutator {name!r}; known: {sorted(MUTATORS)}"
        ) from None
