"""``python -m repro.fuzz`` -- the differential fuzzing campaign driver.

Runs ``--programs`` generated programs (starting at ``--start``) through
the full differential harness, interleaving an AES data-path twin check
every ``--aes-every`` programs.  Failures are shrunk with the ddmin
shrinker and persisted as self-contained pytest reproducers under
``--corpus`` (default ``tests/corpus/``).  Exit status is 0 for a clean
sweep, 1 if any divergence survived shrinking, 2 for usage errors.

``--workers`` (or ``REPRO_WORKERS``) fans the sweep out over the trial
harness; per-program RNG streams are forked by index, so the campaign is
bit-deterministic regardless of worker count.  ``--budget`` bounds the
campaign wall clock: no new batch starts after it expires (already
running programs finish).

``--mutate NAME`` installs a deliberate predictor perturbation on the
fast arms (see :mod:`repro.fuzz.mutations`); the mutation-smoke
self-test uses this to prove the fuzzer catches injected bugs.  When a
mutator is active, write reproducers to a scratch ``--corpus`` -- they
encode a deliberate fault and would fail forever in the real corpus.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.fuzz import corpus as corpus_mod
from repro.fuzz import mutations
from repro.fuzz.diff import (
    DEFAULT_ORACLE_STRIDE,
    check_aes_data_paths,
    check_program,
    check_program_backends,
)
from repro.fuzz.generator import PROFILES, generate_program
from repro.fuzz.shrink import shrink
from repro.harness.runner import resolve_workers, run_trials
from repro.utils.rng import DeterministicRng

#: Programs per scheduling batch (budget is checked between batches).
BATCH = 32


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _resolve_backends(text: Optional[str]) -> Optional[Tuple[str, ...]]:
    """Parse ``--backends``: None, 'all', or comma-separated model ids."""
    if text is None:
        return None
    from repro.cpu.model import model_ids, resolve_model

    if text.strip().lower() == "all":
        return tuple(model_ids())
    requested = tuple(part.strip() for part in text.split(",") if part.strip())
    if not requested:
        raise ValueError("--backends given but no model ids parsed")
    for model_id in requested:
        resolve_model(model_id)  # raises on unknown ids
    return requested


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzer for the engine/predictor twins.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--programs", type=_positive_int, default=500,
                        help="number of programs to run (default 500)")
    parser.add_argument("--start", type=int, default=0,
                        help="first program index (default 0)")
    parser.add_argument("--budget", type=float, default=None, metavar="SECS",
                        help="wall-clock budget; stop starting new batches "
                             "after this many seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="use the small 'smoke' generator profile "
                             "(CI-sized programs)")
    parser.add_argument("--gen-profile", choices=sorted(PROFILES),
                        default=None,
                        help="generator profile (overrides --smoke)")
    parser.add_argument("--profile", action="store_true",
                        help="run the campaign under cProfile and dump the "
                             "top 25 functions by cumulative time")
    parser.add_argument("--workers", default=None,
                        help="worker processes (default: REPRO_WORKERS or 1)")
    parser.add_argument("--corpus", default=str(corpus_mod.DEFAULT_CORPUS_DIR),
                        metavar="DIR",
                        help="directory for shrunk pytest reproducers")
    parser.add_argument("--no-corpus", action="store_true",
                        help="report failures without writing reproducers")
    parser.add_argument("--aes-every", type=int, default=25, metavar="N",
                        help="AES data-path twin check every N programs "
                             "(0 disables; default 25)")
    parser.add_argument("--mutate", default=None, metavar="NAME",
                        help="install a named fast-arm mutator "
                             f"(self-test mode; one of {sorted(mutations.MUTATORS)})")
    parser.add_argument("--backends", default=None, metavar="IDS",
                        help="also run the family-generic arms per "
                             "predictor backend: a comma-separated list "
                             "of model ids, or 'all' for every "
                             "registered family")
    parser.add_argument("--oracle-stride", type=int,
                        default=DEFAULT_ORACLE_STRIDE, metavar="N",
                        help="structural invariant walk every N commits "
                             f"(default {DEFAULT_ORACLE_STRIDE})")
    parser.add_argument("--shrink-limit", type=int, default=3, metavar="N",
                        help="shrink at most N failures per campaign "
                             "(default 3)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-batch progress lines")
    return parser


# ----------------------------------------------------------------------
# trial plumbing (module-level for pickling across worker forks)
# ----------------------------------------------------------------------

def _fuzz_setup(spec: dict) -> dict:
    """Per-worker context: just the campaign parameters."""
    return spec


def _fuzz_trial(context: dict, index: int, rng: Any) -> Tuple[int, List[str]]:
    """Check one program (plus its AES interleave); returns divergences.

    ``index`` is trial-local; ``context['base']`` shifts it to the
    campaign's absolute program index.  Only string summaries cross the
    process boundary; the parent re-runs the failing program locally to
    shrink and persist it.
    """
    index += context.get("base", 0)
    mutator = mutations.get_mutator(context["mutator"])
    fuzz_program = generate_program(context["seed"], index,
                                    profile=context["profile"])
    divergences = check_program(fuzz_program, machine_mutator=mutator,
                                oracle_stride=context["oracle_stride"])
    backends = context.get("backends")
    if backends:
        divergences += check_program_backends(
            fuzz_program, backends=backends, machine_mutator=mutator,
            oracle_stride=context["oracle_stride"])
    lines = [str(d) for d in divergences]
    aes_every = context["aes_every"]
    if aes_every and index % aes_every == 0:
        aes_rng = DeterministicRng(context["seed"] ^ 0xAE5).fork(index)
        lines += [str(d) for d in check_aes_data_paths(aes_rng)]
    return index, lines


def _shrink_and_persist(seed: int, index: int, profile: str,
                        mutator_name: Optional[str], oracle_stride: int,
                        corpus_dir: Optional[str],
                        backends: Optional[Tuple[str, ...]] = None,
                        out=sys.stdout) -> None:
    """Shrink one failing program and (optionally) write its reproducer."""
    mutator = mutations.get_mutator(mutator_name)

    def check_all(candidate) -> List:
        divergences = check_program(candidate, machine_mutator=mutator,
                                    oracle_stride=oracle_stride)
        if backends:
            divergences += check_program_backends(
                candidate, backends=backends, machine_mutator=mutator,
                oracle_stride=oracle_stride)
        return divergences

    def fails(candidate) -> bool:
        return bool(check_all(candidate))

    full = generate_program(seed, index, profile=profile)
    if not fails(full):
        print(f"  program {index}: failure did not reproduce on re-run "
              f"(nondeterminism bug!)", file=out)
        return
    minimal = shrink(full, fails)
    divergences = check_all(minimal)
    print(f"  program {index}: shrunk {len(full.program)} -> "
          f"{len(minimal.program)} instructions "
          f"({len(full.shapes)} -> {len(minimal.shapes)} shapes)", file=out)
    for divergence in divergences:
        print(f"    {divergence}", file=out)
    if corpus_dir is not None:
        case = corpus_mod.FailureCase(
            fuzz_program=minimal, divergences=tuple(divergences),
            mutator=mutator_name,
        )
        path = corpus_mod.write_reproducer(case, directory=corpus_dir)
        print(f"    reproducer: {path}", file=out)


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        workers = resolve_workers(args.workers)
        mutations.get_mutator(args.mutate)  # validate the name up front
        args.backends = _resolve_backends(args.backends)
    except ValueError as exc:
        parser.error(str(exc))
    if not args.profile:
        return _campaign(args, workers, out)
    # cProfile only sees the parent process; profile single-worker runs
    # (the hot paths are identical) for meaningful numbers.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return _campaign(args, workers, out)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(25)


def _campaign(args, workers: int, out) -> int:
    profile = args.gen_profile or ("smoke" if args.smoke else "default")
    corpus_dir = None if args.no_corpus else args.corpus

    started = time.perf_counter()
    failures: List[Tuple[int, List[str]]] = []
    done = 0
    budget_hit = False
    indices = list(range(args.start, args.start + args.programs))
    spec = {
        "seed": args.seed,
        "profile": profile,
        "mutator": args.mutate,
        "oracle_stride": args.oracle_stride,
        "aes_every": args.aes_every,
        "backends": args.backends,
    }

    for low in range(0, len(indices), BATCH):
        if args.budget is not None and \
                time.perf_counter() - started > args.budget:
            budget_hit = True
            break
        batch = indices[low:low + BATCH]
        if workers > 1:
            report = run_trials(
                _fuzz_trial, len(batch),
                setup=_fuzz_setup,
                spec={**spec, "base": batch[0]},
                seed=args.seed, workers=workers, on_error="raise",
            )
            results = list(report.values)
        else:
            base_spec = {**spec, "base": 0}
            results = [
                _fuzz_trial(base_spec, index, None) for index in batch
            ]
        for index, lines in results:
            done += 1
            if lines:
                failures.append((index, lines))
        if not args.quiet:
            elapsed = time.perf_counter() - started
            print(f"[{elapsed:6.1f}s] {done}/{len(indices)} programs, "
                  f"{len(failures)} failing", file=out)

    for index, lines in failures:
        print(f"program {index} diverged:", file=out)
        for line in lines:
            print(f"  {line}", file=out)
    for index, _ in failures[:args.shrink_limit]:
        _shrink_and_persist(args.seed, index, profile, args.mutate,
                            args.oracle_stride, corpus_dir,
                            backends=args.backends, out=out)
    if len(failures) > args.shrink_limit:
        print(f"({len(failures) - args.shrink_limit} further failures "
              f"not shrunk; raise --shrink-limit)", file=out)

    elapsed = time.perf_counter() - started
    status = "BUDGET EXHAUSTED" if budget_hit else "complete"
    verdict = "CLEAN" if not failures else f"{len(failures)} FAILING"
    print(f"fuzz {status}: {done} programs in {elapsed:.1f}s "
          f"(seed {args.seed}, profile {profile}, workers {workers}) "
          f"-- {verdict}", file=out)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
