"""Differential fuzzing and invariant oracle for the twin implementations.

The simulator keeps *twins* -- a fast path and a reference path -- for
its hottest components: the predecoded vs isinstance-dispatch
interpreter engines, the incremental vs refold predictor index caches,
and the T-table vs byte-at-a-time AES data paths.  This package pits
them against each other over seeded random programs:

* :mod:`repro.fuzz.generator` -- shape-based ISA program generation
  (terminating by construction, rebuildable from ``(seed, index)``);
* :mod:`repro.fuzz.diff` -- the differential harness (every engine and
  trace mode, snapshot/restore/replay, AES data paths);
* :mod:`repro.fuzz.oracle` -- structural predictor invariants checked
  independently of any twin comparison;
* :mod:`repro.fuzz.shrink` -- ddmin delta-debugging to a minimal
  reproducer;
* :mod:`repro.fuzz.corpus` -- persisted pytest reproducers under
  ``tests/corpus/``;
* :mod:`repro.fuzz.mutations` -- deliberate predictor perturbations for
  the is-the-fuzzer-alive self-test;
* :mod:`repro.fuzz.cli` -- the ``python -m repro.fuzz`` campaign driver.
"""

from repro.fuzz.corpus import FailureCase, write_reproducer
from repro.fuzz.diff import (
    Divergence,
    check_aes_data_paths,
    check_program,
    run_arm,
)
from repro.fuzz.generator import (
    FuzzProgram,
    GeneratorConfig,
    PROFILES,
    build_program,
    generate_program,
    rebuild,
)
from repro.fuzz.mutations import MUTATORS, get_mutator
from repro.fuzz.oracle import (
    InvariantOracle,
    InvariantViolation,
    check_fast_invariants,
    check_structural_invariants,
)
from repro.fuzz.shrink import ddmin_positions, shrink

__all__ = [
    "Divergence",
    "FailureCase",
    "FuzzProgram",
    "GeneratorConfig",
    "InvariantOracle",
    "InvariantViolation",
    "MUTATORS",
    "PROFILES",
    "build_program",
    "check_aes_data_paths",
    "check_fast_invariants",
    "check_program",
    "check_structural_invariants",
    "ddmin_positions",
    "generate_program",
    "get_mutator",
    "rebuild",
    "run_arm",
    "shrink",
    "write_reproducer",
]
