"""Seeded random ISA program generation for the differential fuzzer.

Programs are built from *shapes*: small, self-contained, structured
fragments (branch diamonds, bounded counted loops, call/return nests,
indirect jump tables, load/store bursts over a bounded data window, and
speculation-window scenes whose branch resolution is delayed by a cache
miss).  Every random decision is drawn up front into immutable shape
records, and assembly from a shape list is a pure function -- which is
what makes the delta-debugging shrinker (:mod:`repro.fuzz.shrink`) and
the persisted reproducer corpus (:mod:`repro.fuzz.corpus`) possible: a
failing program is fully described by ``(seed, index, kept shape
positions, profile)`` and can be rebuilt anywhere.

Termination is guaranteed by construction: all control flow is forward
except loop back edges driven by bounded counters and call chains that
are acyclic (a shape's subroutine ``k`` only ever calls ``k + 1``), so
every generated program halts without relying on the interpreter's
instruction budget.

Indirect jumps need absolute target addresses in registers, which are
only known after assembly; ``build_program`` therefore assembles twice.
Instruction sizes do not depend on immediate values, so the second pass
-- with real label addresses patched into the ``MovImm`` feeding each
``JumpIndirect`` -- reproduces the first pass's layout exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.config import RAPTOR_LAKE, SKYLAKE, MachineConfig
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import BinaryOp, Condition
from repro.isa.program import Program
from repro.utils.rng import DeterministicRng

#: Code base of every fuzz program.
FUZZ_CODE_BASE = 0x0040_0000

#: Base and byte span of the bounded data window all loads/stores hit.
DATA_BASE = 0x0060_0000
DATA_SPAN = 0x1000

#: Scratch registers the shapes draw from.
SCRATCH_REGS = ("r0", "r1", "r2", "r3", "r4", "r5")

#: Machine presets a program may target (chosen per program by the rng).
MACHINE_PRESETS: Dict[str, MachineConfig] = {
    "raptor_lake": RAPTOR_LAKE,
    "skylake": SKYLAKE,
}


# ----------------------------------------------------------------------
# shapes (pure data)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Shape:
    """Base class of all program fragments."""


@dataclass(frozen=True)
class AluShape(Shape):
    """Straight-line ALU noise: ``(op, dst, imm)`` triples."""

    ops: Tuple[Tuple[str, str, int], ...]


@dataclass(frozen=True)
class DiamondShape(Shape):
    """One if/else diamond with a deterministic outcome.

    ``value`` is compared against ``cmp_imm`` under ``condition``; the
    arms are nop padding of the given lengths, and the branch may be
    aligned to sharpen / zero low PC bits in its PHR footprint.
    """

    value: int
    cmp_imm: int
    condition: Condition
    align: int
    then_pad: int
    else_pad: int


@dataclass(frozen=True)
class LoopShape(Shape):
    """A bounded counted loop (the back edge is the interesting branch)."""

    iterations: int
    body_load_offset: Optional[int]
    align: int


@dataclass(frozen=True)
class MemShape(Shape):
    """A burst of stores then loads inside the bounded data window.

    Loaded values are folded into an accumulator register so the data
    path stays architecturally visible.
    """

    base_offset: int
    stores: Tuple[Tuple[int, int, int], ...]  # (offset, width, value)
    loads: Tuple[Tuple[int, int], ...]        # (offset, width)


@dataclass(frozen=True)
class SpecShape(Shape):
    """A speculation-window scene.

    A (cold, hence slow) load feeds the compare, so the conditional
    branch resolves late and a misprediction opens a wide transient
    window; each arm performs loads of distinct cache lines, making
    wrong-path execution visible through the simulated data cache.
    """

    base_offset: int
    cmp_imm: int
    taken_arm_lines: Tuple[int, ...]
    fallthrough_arm_lines: Tuple[int, ...]


@dataclass(frozen=True)
class CallChainShape(Shape):
    """An acyclic call chain of the given depth (RAS push/pop stress).

    Depths beyond the RAS capacity (16) exercise the circular-overwrite
    overflow path and the resulting return mispredictions.
    """

    depth: int
    leaf_load_offset: Optional[int]


@dataclass(frozen=True)
class IndirectShape(Shape):
    """An indirect jump through a register into a small target table."""

    nways: int
    selector: int


@dataclass(frozen=True)
class JumpChainShape(Shape):
    """A run of aligned unconditional jumps (low-entropy PHR footprints)."""

    count: int
    align: int


# ----------------------------------------------------------------------
# generator configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs bounding a generated program."""

    min_shapes: int = 4
    max_shapes: int = 12
    max_loop_iterations: int = 6
    max_call_depth: int = 20
    #: Bytes of the data window pre-initialised with random contents.
    preinit_bytes: int = 48
    #: Dynamic instruction ceiling handed to :meth:`Machine.run`; shaped
    #: programs terminate well below it, so hitting it is itself a bug.
    max_instructions: int = 200_000


#: Named generator profiles, addressable from persisted reproducers.
PROFILES: Dict[str, GeneratorConfig] = {
    "default": GeneratorConfig(),
    "smoke": GeneratorConfig(min_shapes=3, max_shapes=7,
                             max_loop_iterations=4, max_call_depth=18,
                             preinit_bytes=32),
}


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus everything needed to run and rebuild it.

    ``kept`` lists the positions (into the originally generated shape
    list) that survived shrinking; ``None`` means the full program.
    """

    seed: int
    index: int
    profile: str
    machine_name: str
    shapes: Tuple[Shape, ...]
    program: Program = field(compare=False, repr=False)
    initial_memory: Tuple[Tuple[int, int], ...]
    max_instructions: int
    kept: Optional[Tuple[int, ...]] = None
    #: Predictor-family override (a :mod:`repro.cpu.model` registry id);
    #: ``None`` keeps the preset's family.  The per-backend fuzz arms
    #: (:func:`repro.fuzz.diff.check_program_backends`) rebuild the same
    #: program with this set to run every family over one corpus.
    predictor_model: Optional[str] = None

    @property
    def machine_config(self) -> MachineConfig:
        config = MACHINE_PRESETS[self.machine_name]
        if (self.predictor_model is not None
                and self.predictor_model != config.predictor_model):
            config = replace(config, predictor_model=self.predictor_model)
        return config

    def with_predictor_model(self, model_id: str) -> "FuzzProgram":
        """The same program pinned to predictor family ``model_id``."""
        return replace(self, predictor_model=model_id)

    @property
    def static_instructions(self) -> int:
        return len(self.program)


def program_rng(seed: int, index: int) -> DeterministicRng:
    """The decorrelated rng stream of program ``index`` under ``seed``."""
    return DeterministicRng(seed).fork(index)


# ----------------------------------------------------------------------
# shape drawing
# ----------------------------------------------------------------------

_CONDITIONS = tuple(Condition)
_ALU_OPS = ("add", "sub", "xor", "and", "or", "mul")
_ALIGNMENTS = (4, 16, 64, 256)
_WIDTHS = (1, 2, 4, 8)


def _draw_shape(rng: DeterministicRng, config: GeneratorConfig) -> Shape:
    kind = rng.integer(0, 7)
    if kind == 0:
        ops = tuple(
            (rng.choice(_ALU_OPS), rng.choice(SCRATCH_REGS),
             rng.value_bits(16))
            for _ in range(rng.integer(1, 4))
        )
        return AluShape(ops=ops)
    if kind == 1:
        return DiamondShape(
            value=rng.value_bits(8),
            cmp_imm=rng.value_bits(8),
            condition=rng.choice(_CONDITIONS),
            align=rng.choice(_ALIGNMENTS),
            then_pad=rng.integer(1, 3),
            else_pad=rng.integer(1, 3),
        )
    if kind == 2:
        return LoopShape(
            iterations=rng.integer(1, config.max_loop_iterations),
            body_load_offset=(rng.integer(0, DATA_SPAN - 8)
                              if rng.coin() else None),
            align=rng.choice(_ALIGNMENTS),
        )
    if kind == 3:
        stores = tuple(
            (rng.integer(0, DATA_SPAN - 8), rng.choice(_WIDTHS),
             rng.value_bits(32))
            for _ in range(rng.integer(1, 3))
        )
        loads = tuple(
            (rng.integer(0, DATA_SPAN - 8), rng.choice(_WIDTHS))
            for _ in range(rng.integer(1, 3))
        )
        return MemShape(base_offset=rng.integer(0, DATA_SPAN // 2),
                        stores=stores, loads=loads)
    if kind == 4:
        lines = lambda: tuple(  # noqa: E731 -- local shorthand
            64 * rng.integer(0, (DATA_SPAN // 64) - 1)
            for _ in range(rng.integer(1, 3))
        )
        return SpecShape(
            base_offset=rng.integer(0, DATA_SPAN - 8),
            cmp_imm=rng.value_bits(8),
            taken_arm_lines=lines(),
            fallthrough_arm_lines=lines(),
        )
    if kind == 5:
        return CallChainShape(
            depth=rng.integer(1, config.max_call_depth),
            leaf_load_offset=(rng.integer(0, DATA_SPAN - 8)
                              if rng.coin() else None),
        )
    if kind == 6:
        nways = rng.integer(2, 4)
        return IndirectShape(nways=nways, selector=rng.integer(0, nways - 1))
    return JumpChainShape(count=rng.integer(1, 4),
                          align=rng.choice(_ALIGNMENTS))


def generate_shapes(rng: DeterministicRng,
                    config: GeneratorConfig) -> Tuple[Shape, ...]:
    """Draw a full shape list for one program."""
    count = rng.integer(config.min_shapes, config.max_shapes)
    return tuple(_draw_shape(rng, config) for _ in range(count))


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------

class _Emitter:
    """Walks a shape list twice: labels resolve in pass two."""

    def __init__(self, resolve: Optional[Dict[str, int]]):
        self.resolve = resolve

    def address_of(self, label: str) -> int:
        if self.resolve is None:
            return 0
        return self.resolve[label]

    def emit(self, shapes: Sequence[Tuple[int, Shape]],
             name: str) -> Program:
        b = ProgramBuilder(name, base=FUZZ_CODE_BASE)
        b.mov_imm("racc", 0)
        deferred: List[Tuple[int, Shape]] = []
        for position, shape in shapes:
            method = getattr(self, "_emit_" + type(shape).__name__)
            if method(b, position, shape):
                deferred.append((position, shape))
        b.halt()
        for position, shape in deferred:
            method = getattr(self, "_defer_" + type(shape).__name__)
            method(b, position, shape)
        return b.build()

    # -- main-line emitters (return True when a deferred section follows)

    def _emit_AluShape(self, b, position, shape) -> bool:
        for op, dst, imm in shape.ops:
            b.raw(BinaryOp(op, dst, imm=imm))
        return False

    def _emit_DiamondShape(self, b, position, shape) -> bool:
        then_label = f"s{position}_then"
        join_label = f"s{position}_join"
        branch_label = f"s{position}_branch"
        b.mov_imm("r0", shape.value)
        b.cmp("r0", imm=shape.cmp_imm)
        # Alignment gaps hold no instructions; hop over them explicitly.
        b.jmp(branch_label)
        b.align(shape.align)
        b.label(branch_label)
        b.branch(shape.condition, then_label)
        b.nop(shape.else_pad)
        b.jmp(join_label)
        b.label(then_label)
        b.nop(shape.then_pad)
        b.label(join_label)
        return False

    def _emit_LoopShape(self, b, position, shape) -> bool:
        loop_label = f"s{position}_loop"
        b.mov_imm("r1", shape.iterations)
        if shape.body_load_offset is not None:
            b.mov_imm("rbase", DATA_BASE)
        b.jmp(loop_label)
        b.align(shape.align)
        b.label(loop_label)
        if shape.body_load_offset is not None:
            b.load("r2", "rbase", offset=shape.body_load_offset, width=8)
            b.xor("racc", src="r2")
        b.add("racc", imm=1)
        b.sub("r1", imm=1, set_flags=True)
        b.jne(loop_label)
        return False

    def _emit_MemShape(self, b, position, shape) -> bool:
        b.mov_imm("rbase", DATA_BASE + shape.base_offset)
        for offset, width, value in shape.stores:
            capped = min(offset, DATA_SPAN - width)
            b.mov_imm("r3", value)
            b.store("r3", "rbase", offset=capped - shape.base_offset,
                    width=width)
        for offset, width in shape.loads:
            capped = min(offset, DATA_SPAN - width)
            b.load("r4", "rbase", offset=capped - shape.base_offset,
                   width=width)
            b.xor("racc", src="r4")
        return False

    def _emit_SpecShape(self, b, position, shape) -> bool:
        taken_label = f"s{position}_spec_taken"
        join_label = f"s{position}_spec_join"
        b.mov_imm("rbase", DATA_BASE)
        b.load("r5", "rbase", offset=shape.base_offset, width=8)
        b.cmp("r5", imm=shape.cmp_imm)
        b.jeq(taken_label)
        for line in shape.fallthrough_arm_lines:
            b.load("r2", "rbase", offset=line, width=8)
            b.xor("racc", src="r2")
        b.jmp(join_label)
        b.label(taken_label)
        for line in shape.taken_arm_lines:
            b.load("r2", "rbase", offset=line, width=8)
            b.add("racc", src="r2")
        b.label(join_label)
        return False

    def _emit_CallChainShape(self, b, position, shape) -> bool:
        b.call(f"s{position}_fn0")
        return True

    def _defer_CallChainShape(self, b, position, shape) -> None:
        for level in range(shape.depth):
            b.label(f"s{position}_fn{level}")
            b.add("racc", imm=level + 1)
            if level + 1 < shape.depth:
                b.call(f"s{position}_fn{level + 1}")
            elif shape.leaf_load_offset is not None:
                b.mov_imm("rbase", DATA_BASE)
                b.load("r2", "rbase", offset=shape.leaf_load_offset, width=8)
                b.xor("racc", src="r2")
            b.ret()

    def _emit_IndirectShape(self, b, position, shape) -> bool:
        join_label = f"s{position}_ind_join"
        target = f"s{position}_ind_t{shape.selector}"
        b.mov_imm("r0", self.address_of(target))
        b.jmp_reg("r0")
        for way in range(shape.nways):
            b.label(f"s{position}_ind_t{way}")
            b.add("racc", imm=way + 1)
            b.jmp(join_label)
        b.label(join_label)
        return False

    def _emit_JumpChainShape(self, b, position, shape) -> bool:
        for hop in range(shape.count):
            label = f"s{position}_hop{hop}"
            b.jmp(label)
            b.align(shape.align)
            b.label(label)
        return False


def build_program(
    shapes: Sequence[Shape],
    *,
    name: str = "fuzz",
    positions: Optional[Sequence[int]] = None,
) -> Program:
    """Assemble ``shapes`` (two passes; see the module docstring).

    ``positions`` supplies each shape's label namespace (its position in
    the originally generated list); defaults to ``0..len-1``.  Passing
    the original positions keeps a shrunk subset's labels -- and hence
    its branch addresses -- aligned with the full program's, so a
    reproducer shrinks without the code layout shifting under it.
    """
    if positions is None:
        positions = range(len(shapes))
    numbered = list(zip(positions, shapes))
    first = _Emitter(resolve=None).emit(numbered, name)
    second = _Emitter(resolve=first.labels).emit(numbered, name)
    if second.labels != first.labels:
        # The builder's layout contract (instruction sizes independent of
        # operand values) was broken; every patched indirect target is
        # now suspect.
        raise AssertionError(
            f"two-pass assembly of {name!r} moved labels: "
            f"{set(first.labels.items()) ^ set(second.labels.items())}"
        )
    return second


def _draw_initial_memory(rng: DeterministicRng,
                         config: GeneratorConfig) -> Tuple[Tuple[int, int], ...]:
    """Random bytes scattered over the data window."""
    return tuple(
        (DATA_BASE + rng.integer(0, DATA_SPAN - 1), rng.value_bits(8))
        for _ in range(config.preinit_bytes)
    )


def generate_program(seed: int, index: int,
                     profile: str = "default") -> FuzzProgram:
    """Generate program ``index`` of the stream seeded by ``seed``."""
    config = PROFILES[profile]
    rng = program_rng(seed, index)
    machine_name = rng.choice(sorted(MACHINE_PRESETS))
    shapes = generate_shapes(rng, config)
    initial_memory = _draw_initial_memory(rng, config)
    program = build_program(shapes, name=f"fuzz_s{seed}_p{index}")
    return FuzzProgram(
        seed=seed,
        index=index,
        profile=profile,
        machine_name=machine_name,
        shapes=shapes,
        program=program,
        initial_memory=initial_memory,
        max_instructions=config.max_instructions,
    )


def rebuild(seed: int, index: int, keep: Optional[Sequence[int]] = None,
            profile: str = "default") -> FuzzProgram:
    """Rebuild a (possibly shrunk) program from its persisted identity.

    ``keep`` lists positions into the generated shape list; ``None``
    keeps everything.  Used by corpus reproducers and the shrinker.
    """
    full = generate_program(seed, index, profile=profile)
    if keep is None:
        return full
    kept = tuple(keep)
    subset = tuple(full.shapes[position] for position in kept)
    program = build_program(subset, name=f"fuzz_s{seed}_p{index}_shrunk",
                            positions=kept)
    return replace(full, shapes=subset, program=program, kept=kept)


def with_shapes(fuzz_program: FuzzProgram, shapes: Sequence[Shape],
                positions: Sequence[int]) -> FuzzProgram:
    """A variant of ``fuzz_program`` running only ``shapes``.

    Unlike :func:`rebuild` the shapes themselves may be *reduced* copies
    (fewer loop iterations, shallower call chains); the shrinker uses
    this for its final within-shape minimisation pass.
    """
    program = build_program(shapes, name=fuzz_program.program.name + "_min",
                            positions=positions)
    return replace(fuzz_program, shapes=tuple(shapes), program=program,
                   kept=tuple(positions))
