"""Structural predictor invariants, checked independently of twin diffs.

The differential harness catches *divergence* between twins; it cannot
catch a bug both twins share.  This oracle therefore asserts properties
the hardware model must satisfy by construction, from the paper's
reverse-engineered structure alone:

* the history register never exceeds its advertised bit width (for the
  paper's PHR: ``2 * capacity`` bits, Section 2.2.1);
* every base-predictor and tagged-table counter stays inside its n-bit
  saturating range (Observation 2: n = 3), with bookkeeping (`_populated`)
  matching the live entries;
* tagged sets respect associativity, hold no duplicate tags, and keep
  useful bits inside the 2-bit TAGE range (predictor families without
  TAGE-shaped tables supply their own walk through a
  ``structural_violations(deep)`` method, e.g. the tournament family);
* the RAS live count matches its occupied slots and never leaves
  ``[0, depth]``;
* perf counters stay mutually consistent (mispredictions never exceed
  executions, per-PC tallies sum to the globals, RAS underflows are a
  subset of both returns and indirect mispredictions).

Cost discipline: :func:`check_fast_invariants` is O(threads) and runs
after **every** committed branch; :func:`check_structural_invariants`
walks the populated predictor state and runs every ``stride`` commits
plus once at the end of each program (``deep=True`` additionally scans
the full base-predictor array for bookkeeping strays).
"""

from __future__ import annotations

from typing import List

from repro.cpu.machine import Machine


class InvariantViolation(AssertionError):
    """A structural predictor invariant failed."""


def check_fast_invariants(machine: Machine) -> List[str]:
    """O(1)-per-component invariants, cheap enough for every commit."""
    violations: List[str] = []
    for context in machine.threads:
        phr = context.phr
        # Every history family advertises its width via `bits` (PHR:
        # 2 * capacity doublet bits, GHR: capacity direction bits).
        if phr.value >> phr.bits:
            violations.append(
                f"thread {context.thread_id}: history value {phr.value:#x} "
                f"exceeds its {phr.bits}-bit width"
            )
        ras = context.ras
        live_slots = sum(1 for entry in ras._entries if entry is not None)
        if ras._live != live_slots:
            violations.append(
                f"thread {context.thread_id}: RAS live count {ras._live} "
                f"!= occupied slots {live_slots}"
            )
        if not 0 <= ras._live <= ras.depth:
            violations.append(
                f"thread {context.thread_id}: RAS live count {ras._live} "
                f"outside [0, {ras.depth}]"
            )
        if not 0 <= ras._top < ras.depth:
            violations.append(
                f"thread {context.thread_id}: RAS top {ras._top} "
                f"outside [0, {ras.depth})"
            )
    perf = machine.perf
    if perf.conditional_mispredictions > perf.conditional_branches:
        violations.append(
            f"mispredictions {perf.conditional_mispredictions} exceed "
            f"conditional branches {perf.conditional_branches}"
        )
    if perf.ras_underflows > perf.returns:
        violations.append(
            f"RAS underflows {perf.ras_underflows} exceed returns "
            f"{perf.returns}"
        )
    if perf.ras_underflows > perf.indirect_mispredictions:
        violations.append(
            f"RAS underflows {perf.ras_underflows} exceed indirect "
            f"mispredictions {perf.indirect_mispredictions}"
        )
    for name in ("conditional_branches", "taken_branches", "returns",
                 "indirect_branches", "instructions",
                 "transient_instructions", "speculation_windows"):
        if getattr(perf, name) < 0:
            violations.append(f"perf counter {name} went negative")
    return violations


def check_structural_invariants(machine: Machine,
                                deep: bool = False) -> List[str]:
    """Walk populated predictor state; ``deep`` adds full-array scans."""
    violations = check_fast_invariants(machine)
    cbp = machine.cbp

    # Predictor families whose tables are not TAGE-shaped (the
    # tournament's three bimodal arrays) supply their own walk; the
    # built-in walk below covers every ConditionalBranchPredictor-backed
    # family (intel-cbp, m1-phr).
    structural = getattr(cbp, "structural_violations", None)
    if structural is not None:
        violations.extend(structural(deep=deep))
        violations.extend(_check_perf_consistency(machine))
        return violations

    base = cbp.base
    maximum = (1 << base.counter_bits) - 1
    for idx in base._populated:
        counter = base._counters[idx]
        if counter is None:
            violations.append(f"base index {idx} in _populated but empty")
        elif not 0 <= counter.value <= maximum:
            violations.append(
                f"base counter {idx} value {counter.value} outside "
                f"[0, {maximum}]"
            )
    if deep:
        live = {idx for idx, counter in enumerate(base._counters)
                if counter is not None}
        if live != base._populated:
            violations.append(
                f"base _populated bookkeeping drifted: "
                f"{len(live ^ base._populated)} stray indices"
            )

    for number, table in enumerate(cbp.tables, start=1):
        counter_max = (1 << table.counter_bits) - 1
        tag_limit = 1 << table.tag_bits
        nonempty = set()
        for index, ways in enumerate(table._sets):
            if not ways:
                continue
            nonempty.add(index)
            if len(ways) > table.ways:
                violations.append(
                    f"table {number} set {index} holds {len(ways)} ways "
                    f"(associativity {table.ways})"
                )
            tags = [entry.tag for entry in ways]
            if len(tags) != len(set(tags)):
                violations.append(
                    f"table {number} set {index} holds duplicate tags"
                )
            for entry in ways:
                if not 0 <= entry.tag < tag_limit:
                    violations.append(
                        f"table {number} set {index} tag {entry.tag:#x} "
                        f"wider than {table.tag_bits} bits"
                    )
                if not 0 <= entry.counter.value <= counter_max:
                    violations.append(
                        f"table {number} set {index} counter "
                        f"{entry.counter.value} outside [0, {counter_max}]"
                    )
                if not 0 <= entry.useful <= 3:
                    violations.append(
                        f"table {number} set {index} useful bit "
                        f"{entry.useful} outside [0, 3]"
                    )
        if nonempty != table._populated:
            violations.append(
                f"table {number} _populated bookkeeping drifted: "
                f"{len(nonempty ^ table._populated)} stray sets"
            )

    violations.extend(_check_perf_consistency(machine))
    return violations


def _check_perf_consistency(machine: Machine) -> List[str]:
    """Cross-check the perf tallies against each other and the RAS."""
    violations: List[str] = []
    perf = machine.perf
    executed = sum(perf.per_pc_executions.values())
    if executed != perf.conditional_branches:
        violations.append(
            f"per-PC executions sum {executed} != conditional branches "
            f"{perf.conditional_branches}"
        )
    mispredicted = sum(perf.per_pc_mispredictions.values())
    if mispredicted != perf.conditional_mispredictions:
        violations.append(
            f"per-PC mispredictions sum {mispredicted} != total "
            f"{perf.conditional_mispredictions}"
        )
    for pc, count in perf.per_pc_mispredictions.items():
        if count > perf.per_pc_executions.get(pc, 0):
            violations.append(
                f"pc {pc:#x} mispredicted {count} times but executed "
                f"{perf.per_pc_executions.get(pc, 0)}"
            )
    underflows = sum(context.ras.underflows for context in machine.threads)
    if perf.ras_underflows > underflows:
        violations.append(
            f"perf counts {perf.ras_underflows} RAS underflows but the "
            f"stacks only saw {underflows}"
        )
    return violations


class InvariantOracle:
    """A per-commit hook enforcing the invariants during a run.

    Install via :attr:`Machine.branch_observer` (or compose into an
    existing observer).  Fast invariants run on every commit; the
    structural walk every ``stride`` commits (0 disables the periodic
    walk).  Call :meth:`final_check` after the run for the deep scan.
    """

    def __init__(self, machine: Machine, stride: int = 32):
        if stride < 0:
            raise ValueError(f"stride must be >= 0, got {stride}")
        self.machine = machine
        self.stride = stride
        self.commits = 0

    def after_commit(self, pc: int) -> None:
        self.commits += 1
        violations = check_fast_invariants(self.machine)
        if not violations and self.stride and self.commits % self.stride == 0:
            violations = check_structural_invariants(self.machine)
        if violations:
            raise InvariantViolation(
                f"after commit #{self.commits} (pc {pc:#x}): "
                + "; ".join(violations)
            )

    def __call__(self, pc: int, kind, taken: bool) -> None:
        self.after_commit(pc)

    def final_check(self) -> None:
        violations = check_structural_invariants(self.machine, deep=True)
        if violations:
            raise InvariantViolation(
                f"after run ({self.commits} commits): "
                + "; ".join(violations)
            )
