"""Deterministic trial fan-out for the end-to-end attack experiments.

Every Section 8/9 attack evaluation and most ``bench_*`` scripts run
thousands of *independent* trials: AES leaks per plaintext, per-image
recoveries, mitigation arms, probe rounds.  This package gives them one
execution engine:

* :func:`run_trials` / :class:`TrialRunner` -- fan independent trials out
  over a ``ProcessPoolExecutor`` (or run them inline with ``workers=1``)
  with per-trial forked :class:`~repro.utils.rng.DeterministicRng`
  streams, chunked scheduling, and progress/failure accounting.  The
  determinism contract pins ``workers=N`` bit-identical to ``workers=1``.
  Pass ``vectorize=N`` with a ``batch_trial`` callable to run blocks of
  N trials through one :class:`~repro.batch.BatchMachine` sweep instead
  of N scalar trials (with automatic per-block scalar fallback).
* :meth:`repro.cpu.machine.Machine.snapshot` /
  :meth:`~repro.cpu.machine.Machine.restore` (the cpu layer's half of the
  harness) reset a trained machine between trials in O(changed-state)
  instead of re-provisioning, which is also what makes trials
  order-independent -- and therefore parallelizable -- in the first
  place.

Worker count comes from the call site or the ``REPRO_WORKERS``
environment variable (see :func:`resolve_workers`).
"""

from repro.harness.runner import (
    DEFAULT_SEED,
    TrialError,
    TrialFailure,
    TrialReport,
    TrialRunner,
    WORKERS_ENV,
    resolve_workers,
    run_trials,
    trial_rng,
)

__all__ = [
    "DEFAULT_SEED",
    "TrialError",
    "TrialFailure",
    "TrialReport",
    "TrialRunner",
    "WORKERS_ENV",
    "resolve_workers",
    "run_trials",
    "trial_rng",
]
