"""The deterministic trial runner.

Execution model
---------------

A *trial* is a pure-ish function ``trial(context, index, rng)`` whose
result depends only on its three arguments:

* ``context`` -- built once per worker process by ``setup(spec)`` from a
  picklable ``spec`` (a machine + attack provisioned and trained, say).
  ``setup`` must be deterministic: every worker builds an equivalent
  context.
* ``index`` -- the trial's global 0-based index.
* ``rng`` -- a :class:`DeterministicRng` forked from the harness seed by
  ``index`` (see :func:`trial_rng`), so a trial draws the same stream no
  matter which worker runs it, in which order, in which chunk.

Trials that mutate their context's machine must reset it (the
:meth:`Machine.restore <repro.cpu.machine.Machine.restore>` checkpoint
pattern) so results stay order-independent; that is the whole
determinism contract, and ``tests/test_harness.py`` pins ``workers=N``
bit-identical to ``workers=1``.

Parallelism uses a ``fork``-context ``ProcessPoolExecutor`` so that
``setup``/``trial`` resolve in the children by module import without a
spawn-safe ``__main__`` dance; where ``fork`` is unavailable the runner
degrades to the serial path (``TrialReport.parallel`` says which ran).
Scheduling is chunked: ``chunk_size`` trials ship per task to amortize
pool round-trips, and failures are captured per trial -- a raising trial
records a :class:`TrialFailure` instead of poisoning its whole chunk.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.utils.rng import DeterministicRng

#: Default base seed for per-trial RNG forks.
DEFAULT_SEED = 0x7A1A15

#: Environment knob: default worker count for every harness call site
#: (benchmarks, examples) that does not pass one explicitly.
WORKERS_ENV = "REPRO_WORKERS"


def _parse_workers(value, source: str) -> int:
    """Strictly validate a worker count: a positive integer, nothing else.

    Rejects bools, floats (even integral ones -- ``2.0`` workers is a
    caller bug, not a count), and unparsable strings, naming the value
    and where it came from so CLI/env typos surface immediately.
    """
    if isinstance(value, bool):
        raise ValueError(
            f"worker count from {source} must be a positive integer, "
            f"got {value!r}"
        )
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ValueError(
                f"worker count from {source} must be a positive integer, "
                f"got {value!r}"
            ) from None
    elif not isinstance(value, int):
        raise ValueError(
            f"worker count from {source} must be a positive integer, "
            f"got {value!r} ({type(value).__name__})"
        )
    if value < 1:
        raise ValueError(
            f"worker count from {source} must be >= 1, got {value}"
        )
    return value


def resolve_workers(explicit: Optional[int] = None) -> int:
    """The effective worker count: explicit argument, else ``REPRO_WORKERS``,
    else 1 (serial).  Non-positive or non-integer values raise
    :class:`ValueError` naming the offending source."""
    if explicit is not None:
        return _parse_workers(explicit, "argument")
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    return _parse_workers(raw, WORKERS_ENV)


def trial_rng(seed: int, index: int) -> DeterministicRng:
    """The RNG stream of trial ``index`` under harness ``seed``.

    Forked from a fresh base generator each time, so the stream depends
    only on ``(seed, index)`` -- never on chunking or scheduling order.
    """
    return DeterministicRng(seed).fork(index)


@dataclass(frozen=True)
class TrialFailure:
    """One failed trial, captured without aborting its chunk."""

    index: int
    error: str
    traceback: str


class TrialError(RuntimeError):
    """Raised (under ``on_error='raise'``) after any trial failed."""

    def __init__(self, failures: Sequence[TrialFailure]):
        self.failures = list(failures)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} trial(s) failed; first: trial "
            f"{first.index}: {first.error}"
        )


@dataclass
class TrialReport:
    """Outcome of one :func:`run_trials` fan-out."""

    #: Per-trial results ordered by trial index (``None`` for failures).
    values: List[Any]
    failures: List[TrialFailure] = field(default_factory=list)
    workers: int = 1
    chunks: int = 0
    #: Whether a process pool actually ran (False for ``workers=1`` and
    #: for the no-``fork``-platform serial fallback).
    parallel: bool = False
    elapsed: float = 0.0
    #: Batch width the vectorized fast path ran with (1 = scalar trials).
    vectorize: int = 1
    #: Fork workers the vectorize blocks were sharded across (1 = the
    #: whole batch ran in this process, including the no-``fork``
    #: degrade).
    shard_workers: int = 1
    #: Per-trial wall-clock seconds ordered by trial index (``None`` for
    #: trials that never ran).  Trials in a vectorized block share the
    #: block's elapsed time evenly (the scheduler cannot see inside one
    #: batch call).
    timings: List[Optional[float]] = field(default_factory=list)
    #: True when a KeyboardInterrupt/shutdown drained the run early:
    #: completed chunks are reported, pending trials carry a
    #: ``CancelledError`` failure.
    interrupted: bool = False

    @property
    def count(self) -> int:
        """Total trials scheduled."""
        return len(self.values)

    @property
    def completed(self) -> int:
        """Trials that returned a value."""
        return len(self.values) - len(self.failures)

    def timing_summary(self):
        """p50/p99/mean percentiles over the per-trial wall times.

        Returns a :class:`repro.utils.stats.TimingSummary` (or ``None``
        when no trial was timed).  The same helper feeds the service
        load generator, so harness and service latency numbers are
        directly comparable.
        """
        from repro.utils.stats import summarize_timings

        return summarize_timings(self.timings)


def _chunk_indices(count: int, chunk_size: Optional[int],
                   workers: int) -> List[range]:
    """Split ``range(count)`` into contiguous scheduling chunks.

    The default aims at ~4 chunks per worker so a slow chunk cannot
    serialize the tail, while keeping pool round-trips amortized.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-count // (4 * workers)))
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    return [range(low, min(low + chunk_size, count))
            for low in range(0, count, chunk_size)]


def _run_chunk(context: Any, trial: Callable, indices: range,
               seed: int) -> List[tuple]:
    """Run one chunk inline.

    Returns ``(index, ok, payload, seconds)`` quadruples -- the per-trial
    wall time rides along so the parent can report latency percentiles
    without a second timing pass.
    """
    results = []
    for index in indices:
        begin = time.perf_counter()
        try:
            value = trial(context, index, trial_rng(seed, index))
            results.append((index, True, value,
                            time.perf_counter() - begin))
        except Exception as exc:  # noqa: BLE001 -- per-trial accounting
            results.append((
                index, False,
                (f"{type(exc).__name__}: {exc}", traceback.format_exc()),
                time.perf_counter() - begin,
            ))
    return results


def _run_chunk_batched(context: Any, trial: Callable, batch_trial: Callable,
                       indices: range, seed: int, width: int) -> List[tuple]:
    """Run one chunk through ``batch_trial`` in blocks of ``width`` trials.

    ``batch_trial(context, indices, rngs)`` must return one value per
    index, in order.  Each trial still sees the RNG stream
    ``trial_rng(seed, index)``, so a batched run is bit-identical to the
    scalar path for trials that honor the determinism contract.  A block
    whose batch call raises -- or returns the wrong number of values --
    falls back to scalar ``trial`` calls with *fresh* RNG forks, so one
    misbehaving block degrades to the slow path instead of failing
    ``width`` trials at once.
    """
    results: List[tuple] = []
    index_list = list(indices)
    for low in range(0, len(index_list), width):
        block = index_list[low:low + width]
        begin = time.perf_counter()
        try:
            values = batch_trial(context, list(block),
                                 [trial_rng(seed, index) for index in block])
            if values is None or len(values) != len(block):
                raise ValueError(
                    f"batch_trial returned "
                    f"{'no values' if values is None else len(values)} "
                    f"for {len(block)} trials"
                )
        except Exception:  # noqa: BLE001 -- degrade to the scalar path
            results.extend(_run_chunk(context, trial, block, seed))
            continue
        # One batch call is one timing event; split it evenly since the
        # scheduler cannot attribute lockstep work to single trials.
        per_trial = (time.perf_counter() - begin) / len(block)
        results.extend(
            (index, True, value, per_trial)
            for index, value in zip(block, values))
    return results


#: Worker-process context, built once by the pool initializer.
_WORKER_CONTEXT: Any = None


def _worker_initialize(setup: Optional[Callable], spec: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = setup(spec) if setup is not None else None


def _shard_worker_initialize(setup: Optional[Callable], spec: Any,
                             slab_name: Optional[str]) -> None:
    """Shard-pool initializer: attach the snapshot slab, then ``setup``.

    The slab attach runs first so ``setup`` can pick the broadcast
    snapshot up through :func:`repro.batch.shard.current_snapshot`
    instead of rebuilding (re-provisioning, re-training) it from the
    spec.
    """
    global _WORKER_CONTEXT
    if slab_name is not None:
        from repro.batch.shard import set_current_snapshot

        set_current_snapshot(slab_name)
    _WORKER_CONTEXT = setup(spec) if setup is not None else None


def _run_chunk_sharded(pool: ProcessPoolExecutor, trial: Callable,
                       batch_trial: Callable, indices: range, seed: int,
                       width: int, shard_workers: int) -> List[tuple]:
    """Run one chunk's vectorize blocks split across the shard pool.

    Each width-``width`` block becomes up to ``shard_workers`` contiguous
    sub-blocks, one batch call each, running concurrently in the fork
    workers.  Sub-block boundaries cannot change results: the batched
    determinism contract (each trial depends only on ``(spec, index,
    rng)``) makes any contiguous split replica-for-replica identical to
    the unsharded block, which ``tests/test_harness.py`` pins.
    """
    from repro.batch.shard import shard_ranges

    results: List[tuple] = []
    index_list = list(indices)
    for low in range(0, len(index_list), width):
        block = index_list[low:low + width]
        futures = []
        for start, stop in shard_ranges(len(block), shard_workers):
            sub = block[start:stop]
            try:
                future = pool.submit(_worker_run_chunk, trial, sub, seed,
                                     batch_trial, len(sub))
            except BrokenProcessPool:
                results.extend(_broken_shard_records(sub))
                continue
            futures.append((future, sub))
        for future, sub in futures:
            try:
                results.extend(future.result())
            except BrokenProcessPool:
                results.extend(_broken_shard_records(sub))
    return results


def _broken_shard_records(indices: Sequence[int]) -> List[tuple]:
    return [
        (index, False,
         ("BrokenProcessPool: shard worker died before its "
          "sub-block completed",
          "".join(traceback.format_stack())),
         None)
        for index in indices
    ]


def _worker_run_chunk(trial: Callable, indices: range, seed: int,
                      batch_trial: Optional[Callable] = None,
                      vectorize: int = 1) -> List[tuple]:
    if batch_trial is not None:
        return _run_chunk_batched(_WORKER_CONTEXT, trial, batch_trial,
                                  indices, seed, vectorize)
    return _run_chunk(_WORKER_CONTEXT, trial, indices, seed)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or None where unsupported."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def run_trials(
    trial: Callable[[Any, int, DeterministicRng], Any],
    count: int,
    *,
    setup: Optional[Callable[[Any], Any]] = None,
    spec: Any = None,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    on_error: str = "raise",
    progress: Optional[Callable[[int, int], None]] = None,
    vectorize: Optional[int] = None,
    batch_trial: Optional[Callable[[Any, List[int], List[DeterministicRng]],
                                   Sequence[Any]]] = None,
    shard_workers: Optional[int] = None,
    shard_state: Any = None,
) -> TrialReport:
    """Run ``count`` independent trials, optionally across processes.

    ``trial``/``setup`` must be module-level callables (picklable by
    qualified name) when ``workers > 1``; ``spec`` and every trial result
    must be picklable.  ``progress(done, total)`` fires in the parent as
    chunks complete.  ``on_error`` is ``'raise'`` (default; raise
    :class:`TrialError` after all trials ran) or ``'collect'`` (return
    the report with failures recorded and ``values[i] is None``).

    The vectorized fast path: pass ``batch_trial(context, indices, rngs)
    -> values`` plus ``vectorize=N`` and each chunk runs in blocks of up
    to ``N`` trials through one batch call (a
    :class:`~repro.batch.BatchMachine` sweep, say) instead of ``N``
    scalar ``trial`` calls.  ``trial`` stays required -- it is the
    semantic reference and the per-block fallback when a batch call
    raises or returns the wrong number of values.

    Process sharding: ``shard_workers=W`` (requires the vectorized fast
    path, mutually exclusive with ``workers > 1``) splits every
    vectorize block into up to ``W`` contiguous sub-blocks and runs them
    concurrently on a persistent ``fork`` pool -- the phase-1 serial
    interpretation of a :class:`~repro.batch.BatchMachine` block is the
    Amdahl wall this attacks.  ``shard_state`` (a
    :class:`~repro.cpu.machine.MachineSnapshot`) is broadcast to the
    workers once through a shared-memory :class:`~repro.batch.shard.
    SnapshotSlab`; worker-side ``setup`` picks it up via
    :func:`repro.batch.shard.current_snapshot` instead of re-training.
    Platforms without ``fork`` degrade to the inline path
    (``TrialReport.shard_workers`` reports what actually ran).
    """
    if count < 0:
        raise ValueError(f"trial count must be >= 0, got {count}")
    if on_error not in ("raise", "collect"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    if vectorize is not None:
        if not isinstance(vectorize, int) or isinstance(vectorize, bool) \
                or vectorize < 1:
            raise ValueError(
                f"vectorize must be a positive integer, got {vectorize!r}")
        if batch_trial is None:
            raise ValueError("vectorize requires a batch_trial callable")
    width = vectorize if batch_trial is not None else 1
    if width is None:
        width = 1
    workers = resolve_workers(workers)
    shards = (_parse_workers(shard_workers, "shard_workers argument")
              if shard_workers is not None else 1)
    if shards > 1:
        if workers > 1:
            raise ValueError(
                "workers and shard_workers cannot both exceed 1: shard "
                "vectorize blocks across forks OR fan chunks out across "
                "trial workers, not both")
        if batch_trial is None:
            raise ValueError(
                "shard_workers requires the vectorized fast path "
                "(vectorize + batch_trial)")
    start = time.perf_counter()
    values: List[Any] = [None] * count
    timings: List[Optional[float]] = [None] * count
    failures: List[TrialFailure] = []
    interrupted = False
    if count == 0:
        return TrialReport(values=values, workers=workers, parallel=False,
                           vectorize=width)

    chunks = _chunk_indices(count, chunk_size, workers)
    mp_context = _fork_context() if workers > 1 else None
    parallel = workers > 1 and mp_context is not None
    touched = [False] * count

    def absorb(chunk_results: List[tuple]) -> None:
        for index, ok, payload, seconds in chunk_results:
            touched[index] = True
            timings[index] = seconds
            if ok:
                values[index] = payload
            else:
                error, trace = payload
                failures.append(TrialFailure(index=index, error=error,
                                             traceback=trace))

    def broken_pool_records(chunk: range) -> List[tuple]:
        return [
            (index, False,
             ("BrokenProcessPool: worker process died "
              "before the chunk completed",
              "".join(traceback.format_stack())),
             None)
            for index in chunk
        ]

    shard_context = _fork_context() if shards > 1 else None
    sharded = shards > 1 and shard_context is not None

    if sharded:
        slab = None
        slab_name = None
        if shard_state is not None:
            from repro.batch.shard import SnapshotSlab, slabs_supported

            if slabs_supported():
                slab = SnapshotSlab.create(shard_state)
                slab_name = slab.name
        pool = ProcessPoolExecutor(
            max_workers=shards,
            mp_context=shard_context,
            initializer=_shard_worker_initialize,
            initargs=(setup, spec, slab_name),
        )
        done = 0
        try:
            for chunk in chunks:
                try:
                    absorb(_run_chunk_sharded(pool, trial, batch_trial,
                                              chunk, seed, width, shards))
                except BrokenProcessPool:
                    absorb(broken_pool_records(chunk))
                done += len(chunk)
                if progress is not None:
                    progress(done, count)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            pool.shutdown(wait=not interrupted, cancel_futures=interrupted)
            if slab is not None:
                slab.close()
                slab.unlink()
    elif not parallel:
        context = setup(spec) if setup is not None else None
        done = 0
        try:
            for chunk in chunks:
                if batch_trial is not None:
                    absorb(_run_chunk_batched(context, trial, batch_trial,
                                              chunk, seed, width))
                else:
                    absorb(_run_chunk(context, trial, chunk, seed))
                done += len(chunk)
                if progress is not None:
                    progress(done, count)
        except KeyboardInterrupt:
            # Graceful drain: everything absorbed so far stays; the
            # remaining trials are recorded as cancelled below.
            interrupted = True
    else:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            mp_context=mp_context,
            initializer=_worker_initialize,
            initargs=(setup, spec),
        )
        processed: set = set()
        try:
            futures = {
                pool.submit(_worker_run_chunk, trial, chunk, seed,
                            batch_trial, width): chunk
                for chunk in chunks
            }
            done = 0
            try:
                for future in as_completed(futures):
                    chunk = futures[future]
                    processed.add(future)
                    try:
                        absorb(future.result())
                    except BrokenProcessPool:
                        # A worker died (os._exit, OOM kill, segfault in
                        # a native extension) and took the pool with it.
                        # The executor cannot say which chunk crashed
                        # it, so the chunk attached to each failed
                        # future is recorded trial by trial and the
                        # remaining futures drain the same way --
                        # on_error='collect' still returns a full report
                        # instead of leaking the exception.
                        absorb(broken_pool_records(chunk))
                    done += len(chunk)
                    if progress is not None:
                        progress(done, count)
            except KeyboardInterrupt:
                # Graceful drain: cancel every not-yet-running chunk,
                # keep every chunk that already finished (including any
                # that completed during the interrupt window), and let
                # the cancelled tail surface as per-trial failures.
                interrupted = True
                for future in futures:
                    future.cancel()
                for future, chunk in futures.items():
                    if future in processed or not future.done() \
                            or future.cancelled():
                        continue
                    try:
                        absorb(future.result())
                    except BrokenProcessPool:
                        absorb(broken_pool_records(chunk))
        finally:
            pool.shutdown(wait=not interrupted, cancel_futures=interrupted)

    if interrupted:
        if on_error == "raise":
            raise KeyboardInterrupt
        for index in range(count):
            if not touched[index]:
                failures.append(TrialFailure(
                    index=index,
                    error="CancelledError: pending chunk cancelled by "
                          "KeyboardInterrupt drain",
                    traceback="",
                ))

    failures.sort(key=lambda failure: failure.index)
    report = TrialReport(
        values=values,
        failures=failures,
        workers=workers,
        chunks=len(chunks),
        parallel=parallel,
        elapsed=time.perf_counter() - start,
        vectorize=width,
        shard_workers=shards if sharded else 1,
        timings=timings,
        interrupted=interrupted,
    )
    if failures and on_error == "raise":
        raise TrialError(failures)
    return report


@dataclass
class TrialRunner:
    """A reusable :func:`run_trials` configuration.

    Benchmarks that fan out several sweeps against the same provisioned
    context keep one runner and call :meth:`run` per sweep.
    """

    setup: Optional[Callable[[Any], Any]] = None
    spec: Any = None
    seed: int = DEFAULT_SEED
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    on_error: str = "raise"
    vectorize: Optional[int] = None
    batch_trial: Optional[Callable] = None
    shard_workers: Optional[int] = None
    shard_state: Any = None

    def run(self, trial: Callable, count: int,
            progress: Optional[Callable[[int, int], None]] = None,
            ) -> TrialReport:
        """Fan ``trial`` out under this runner's configuration."""
        return run_trials(
            trial, count,
            setup=self.setup, spec=self.spec, seed=self.seed,
            workers=self.workers, chunk_size=self.chunk_size,
            on_error=self.on_error, progress=progress,
            vectorize=self.vectorize, batch_trial=self.batch_trial,
            shard_workers=self.shard_workers, shard_state=self.shard_state,
        )
