"""Prefix-replay engine: snapshot-backed guess batching (ARCHITECTURE.md §9).

The paper's Section 4--6 primitives all share one loop shape: establish a
history prefix (clear the PHR, run the victim, prime a PHT entry), then
measure many small divergent suffixes -- one per doublet guess, per
probe candidate, per leak coordinate.  Re-running the prefix for every
suffix costs O(guesses x full-run).  :class:`ReplayEngine` executes each
distinct prefix once, checkpoints the full machine through
:meth:`Machine.snapshot` (PHR, base + tagged PHTs, BTB, RAS, IBP, cache,
perf counters), and replays suffixes by ``restore()`` + run-suffix:
O(full-run + sum-of-suffixes).

Checkpoints form a tree.  ``checkpoint(key, build, parent)`` declares
that state ``key`` is reached by running ``build()`` from state
``parent`` (the implicit root is the machine state at engine
construction), so successive reads extend the previous prefix
incrementally instead of rebuilding from scratch.  Builders must be
deterministic functions of the machine state they start from -- that is
exactly the property the fast engine's snapshot-replay fuzz arm pins --
which makes the two reuse policies interchangeable:

* ``reuse='checkpoint'`` -- cache a snapshot per key; establishing a
  state is a diff-based ``restore()``.
* ``reuse='none'`` -- the naive twin: cache nothing and re-run the whole
  builder chain from the root for every evaluation.  Property tests pin
  ``checkpoint == none`` bit for bit; benchmarks measure the gap.

The cache is bounded (LRU).  Evicting a checkpoint is safe because the
builder chain is retained: the state is simply rebuilt (and re-cached)
on next use.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

REUSE_MODES = ("checkpoint", "none")

#: Sentinel key for the machine state captured at engine construction.
ROOT: Hashable = ("replay-root",)


class ReplayError(ValueError):
    """Misuse of the replay engine (unknown key, bad reuse mode, ...)."""


@dataclass
class ReplayStats:
    """Counters for the perf benches and for cache-behaviour tests."""

    prefix_runs: int = 0  #: builder executions (cache misses + 'none' reruns)
    suffix_runs: int = 0  #: evaluate() suffix executions
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    restores: int = 0  #: Machine.restore() calls issued by the engine
    evictions: int = 0
    #: Snapshots pinned by :meth:`ReplayEngine.capture` /
    #: :meth:`ReplayEngine.adopt` over the engine's lifetime (never
    #: decremented -- it counts pin *events*, not live pins).
    pins: int = 0
    #: Checkpoint misses resolved from the shared
    #: :class:`~repro.service.store.SnapshotStore` instead of a rebuild.
    store_hits: int = 0
    #: Checkpoint misses the store could not serve either.
    store_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Checkpoint hits over lookups (0.0 before any lookup).

        Store hits count as hits -- the prefix was *not* rebuilt -- so
        the rate answers the question the benchmarks ask: what fraction
        of establishes avoided running the builder chain.
        """
        lookups = self.checkpoint_hits + self.checkpoint_misses
        if not lookups:
            return 0.0
        return (self.checkpoint_hits + self.store_hits) / lookups

    def as_dict(self) -> Dict[str, int]:
        return {
            "prefix_runs": self.prefix_runs,
            "suffix_runs": self.suffix_runs,
            "checkpoint_hits": self.checkpoint_hits,
            "checkpoint_misses": self.checkpoint_misses,
            "restores": self.restores,
            "evictions": self.evictions,
            "pins": self.pins,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }

    def reset(self) -> None:
        """Zero every counter.

        For benchmarks that reuse one warm engine across measurement
        windows: the cached snapshots (and pins) survive -- only the
        accounting restarts, so each window's hit rate reflects that
        window alone.
        """
        for name in self.as_dict():
            setattr(self, name, 0)


@dataclass
class _Node:
    """One declared checkpoint: how to rebuild it, and its cached state."""

    parent: Hashable
    build: Optional[Callable[[], Any]]  #: ``None`` for captured states
    depth: int


class ReplayEngine:
    """Keyed checkpoint cache over one :class:`~repro.cpu.machine.Machine`.

    The engine snapshots the machine at construction time as the root of
    the checkpoint tree; every declared prefix extends the root or
    another declared checkpoint.
    """

    ROOT = ROOT

    def __init__(self, machine, reuse: str = "checkpoint",
                 capacity: int = 128, store=None,
                 store_scope: Optional[Hashable] = None):
        if reuse not in REUSE_MODES:
            raise ReplayError(
                f"unknown reuse mode {reuse!r}; expected one of {REUSE_MODES}")
        if capacity < 1:
            raise ReplayError(f"capacity must be >= 1, got {capacity}")
        if store is not None and store_scope is None:
            raise ReplayError(
                "a shared store needs a store_scope naming the "
                "(profile, prefix program) identity its checkpoints "
                "belong to -- engine keys alone are not content addresses")
        self.machine = machine
        self.reuse = reuse
        self.capacity = capacity
        #: Optional shared :class:`~repro.service.store.SnapshotStore`.
        #: On a local checkpoint miss the engine consults the store
        #: before rebuilding, and publishes freshly built checkpoints
        #: back -- that is how concurrent jobs against the same
        #: victim+profile share prefixes across requests and restarts.
        self.store = store
        self.store_scope = store_scope
        self.stats = ReplayStats()
        self._nodes: Dict[Hashable, _Node] = {}
        #: key -> MachineSnapshot, LRU order (only under reuse='checkpoint').
        self._snapshots: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: key -> MachineSnapshot for captured states (never evicted --
        #: there is no builder chain to rebuild them from).  Pinned
        #: snapshots count against ``capacity``; :meth:`capture` refuses
        #: to pin past it rather than silently growing the cache or
        #: starving the LRU side into a store-then-evict loop.
        self._pinned: Dict[Hashable, Any] = {}
        self._root_snapshot = machine.snapshot()

    # ------------------------------------------------------------------

    def checkpoint(self, key: Hashable, build: Callable[[], Any],
                   parent: Hashable = ROOT) -> Hashable:
        """Declare state ``key`` = run ``build()`` from state ``parent``.

        Establishes the state immediately (the machine is left at
        ``key``) and returns ``key`` for use with :meth:`evaluate`.
        Re-declaring an existing key with a different parent chain raises
        -- a key names one state, forever.
        """
        node = self._nodes.get(key)
        if node is None:
            if parent is not ROOT and parent not in self._nodes:
                raise ReplayError(f"unknown parent checkpoint {parent!r}")
            depth = 0 if parent is ROOT else self._nodes[parent].depth + 1
            self._nodes[key] = _Node(parent=parent, build=build, depth=depth)
        elif node.parent != parent:
            raise ReplayError(
                f"checkpoint {key!r} already declared with parent "
                f"{node.parent!r}")
        self._establish(key)
        return key

    def capture(self, key: Hashable, parent: Hashable = ROOT) -> Hashable:
        """Adopt the machine's *current* state as checkpoint ``key``.

        For prefixes whose builders depend on evolving out-of-band state
        (the AES attack's heal-then-poison sequence tracks the previous
        trial's coordinate outside the machine), re-running a builder
        from ``parent`` would not reproduce the live state.  ``capture``
        snapshots the machine exactly as it stands instead.  Captured
        checkpoints are pinned -- never evicted, since there is no
        builder to rebuild them from -- and work under either reuse
        policy.  ``parent`` is recorded purely for :meth:`invalidate`'s
        descendant tracking.  The machine is left untouched.

        Pinned snapshots occupy cache slots: once ``capacity`` of them
        exist, further captures raise :class:`ReplayError` (an evicted
        capture would be unrecoverable, so eviction is not an option).
        Free slots with :meth:`invalidate` or a larger ``capacity``.
        """
        if key is ROOT:
            raise ReplayError("cannot capture over the root key")
        if key in self._nodes:
            raise ReplayError(f"checkpoint {key!r} already declared")
        if parent is not ROOT and parent not in self._nodes:
            raise ReplayError(f"unknown parent checkpoint {parent!r}")
        if len(self._pinned) >= self.capacity:
            raise ReplayError(
                f"cannot capture {key!r}: all {self.capacity} cache "
                f"slot(s) hold pinned captures, which are never evicted; "
                f"invalidate() a capture or raise the engine capacity")
        depth = 0 if parent is ROOT else self._nodes[parent].depth + 1
        self._nodes[key] = _Node(parent=parent, build=None, depth=depth)
        self._pinned[key] = self.machine.snapshot()
        self.stats.pins += 1
        # The pin shrank the LRU side's budget; trim it immediately so
        # the cache bound holds at all times, not just on the next store.
        self._trim()
        return key

    def adopt(self, key: Hashable, snapshot, parent: Hashable = ROOT
              ) -> Hashable:
        """Install an externally obtained snapshot as a pinned checkpoint.

        The cross-process twin of :meth:`capture`: a snapshot pulled
        from the shared store (built by another worker, or by a previous
        service run) becomes checkpoint ``key`` without touching the
        machine.  Same pinning/eviction semantics and the same capacity
        guard as :meth:`capture`.
        """
        if key is ROOT:
            raise ReplayError("cannot adopt over the root key")
        if key in self._nodes:
            raise ReplayError(f"checkpoint {key!r} already declared")
        if parent is not ROOT and parent not in self._nodes:
            raise ReplayError(f"unknown parent checkpoint {parent!r}")
        if len(self._pinned) >= self.capacity:
            raise ReplayError(
                f"cannot adopt {key!r}: all {self.capacity} cache "
                f"slot(s) hold pinned captures, which are never evicted; "
                f"invalidate() a capture or raise the engine capacity")
        depth = 0 if parent is ROOT else self._nodes[parent].depth + 1
        self._nodes[key] = _Node(parent=parent, build=None, depth=depth)
        self._pinned[key] = snapshot
        self.stats.pins += 1
        self._trim()
        return key

    def evaluate(self, key: Hashable, suffix: Callable[[], Any]) -> Any:
        """Establish state ``key`` and run ``suffix()`` on the machine.

        Under ``reuse='checkpoint'`` establishing is (at worst) one
        diff-based restore; under ``reuse='none'`` it re-runs the whole
        builder chain from the root.  Either way the suffix starts from
        a bit-identical machine state, which is the equivalence the
        property tests pin.
        """
        self._establish(key)
        self.stats.suffix_runs += 1
        return suffix()

    def run_batch(self, key: Hashable,
                  suffixes: List[Callable[[], Any]]) -> List[Any]:
        """``evaluate(key, s)`` for each suffix, in order."""
        return [self.evaluate(key, suffix) for suffix in suffixes]

    def invalidate(self, key: Optional[Hashable] = None) -> None:
        """Drop cached snapshots (all of them, or ``key`` and descendants).

        Built declarations survive: those states rebuild from their
        parents on next use.  Captured checkpoints have no builder, so
        invalidation drops their declarations (and their descendants')
        entirely -- the keys become free for re-capture.  Use this when
        the machine is mutated out-of-band (e.g. a config swap) and
        cached states no longer describe it.
        """
        if key is None:
            stale = set(self._nodes)
            self._snapshots.clear()
        else:
            stale = {key}
            changed = True
            while changed:  # transitive closure over declared children
                changed = False
                for child, node in self._nodes.items():
                    if node.parent in stale and child not in stale:
                        stale.add(child)
                        changed = True
            for dead in stale:
                self._snapshots.pop(dead, None)
        unrecoverable = {k for k in stale
                         if k in self._nodes and self._nodes[k].build is None}
        changed = True
        while changed:  # descendants of a dropped capture cannot rebuild
            changed = False
            for child, node in self._nodes.items():
                if node.parent in unrecoverable and child not in unrecoverable:
                    unrecoverable.add(child)
                    changed = True
        for dead in unrecoverable:
            self._nodes.pop(dead, None)
            self._pinned.pop(dead, None)
            self._snapshots.pop(dead, None)

    # ------------------------------------------------------------------

    def _establish(self, key: Hashable) -> None:
        """Bring the machine to state ``key``."""
        if key is ROOT:
            self.machine.restore(self._root_snapshot)
            self.stats.restores += 1
            return
        if key not in self._nodes:
            raise ReplayError(f"unknown checkpoint {key!r}")
        pinned = self._pinned.get(key)
        if pinned is not None:
            self.stats.checkpoint_hits += 1
            self.machine.restore(pinned)
            self.stats.restores += 1
            return
        if self._nodes[key].build is None:
            raise ReplayError(
                f"captured checkpoint {key!r} has no snapshot left")
        if self.reuse == "checkpoint":
            snapshot = self._snapshots.get(key)
            if snapshot is not None:
                self.stats.checkpoint_hits += 1
                self._snapshots.move_to_end(key)
                self.machine.restore(snapshot)
                self.stats.restores += 1
                return
            self.stats.checkpoint_misses += 1
            snapshot = self._store_fetch(key)
            if snapshot is not None:
                self._snapshots[key] = snapshot
                self._snapshots.move_to_end(key)
                self._trim()
                self.machine.restore(snapshot)
                self.stats.restores += 1
                return
        node = self._nodes[key]
        self._establish(node.parent)
        node.build()
        self.stats.prefix_runs += 1
        if self.reuse == "checkpoint":
            self._store(key)

    def _content_key(self, key: Hashable) -> Optional[str]:
        """The shared-store content address of built checkpoint ``key``.

        ``None`` when no store is attached, when any ancestor is a
        capture (its state is not a deterministic function of the
        declared chain, so it has no content identity), or when the key
        chain contains values the store cannot canonicalize.
        """
        if self.store is None:
            return None
        chain: List[Hashable] = []
        cursor = key
        while cursor is not ROOT:
            node = self._nodes[cursor]
            if node.build is None:
                return None
            chain.append(cursor)
            cursor = node.parent
        chain.reverse()
        try:
            return self.store.content_key(
                "replay", self.store_scope, tuple(chain))
        except ValueError:
            return None

    def _store_fetch(self, key: Hashable):
        """A shared-store snapshot for ``key``, or ``None``."""
        content = self._content_key(key)
        if content is None:
            return None
        entry = self.store.get(content)
        if entry is None:
            self.stats.store_misses += 1
            return None
        self.stats.store_hits += 1
        snapshot, __ = entry
        return snapshot

    def _store(self, key: Hashable) -> None:
        snapshot = None
        budget = self.capacity - len(self._pinned)
        if budget >= 1:
            snapshot = self.machine.snapshot()
            self._snapshots[key] = snapshot
            self._snapshots.move_to_end(key)
            self._trim()
        # Every local slot pinned: storing locally would evict the
        # snapshot we just made (or another key) in an endless
        # store/evict churn, so the local tier runs uncached -- but the
        # shared store still gets the build, which is the whole point of
        # cross-request reuse.
        content = self._content_key(key)
        if content is not None:
            if snapshot is None:
                snapshot = self.machine.snapshot()
            self.store.put(content, snapshot)

    def _trim(self) -> None:
        """Evict LRU snapshots until pins + cached fit ``capacity``."""
        budget = max(0, self.capacity - len(self._pinned))
        while len(self._snapshots) > budget:
            self._snapshots.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key is ROOT or key in self._nodes

    def snapshot_of(self, key: Hashable):
        """The stored snapshot for ``key`` (pinned or cached), or None."""
        if key is ROOT:
            return self._root_snapshot
        if key in self._pinned:
            return self._pinned[key]
        return self._snapshots.get(key)

    def cached_keys(self) -> Tuple[Hashable, ...]:
        """Keys with a live snapshot (LRU order, oldest first)."""
        return tuple(self._snapshots)

    def depth_of(self, key: Hashable) -> int:
        """Chain length from the root to ``key`` (root itself is -1)."""
        if key is ROOT:
            return -1
        if key not in self._nodes:
            raise ReplayError(f"unknown checkpoint {key!r}")
        return self._nodes[key].depth
