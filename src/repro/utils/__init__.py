"""Low-level helpers shared across the Pathfinder reproduction."""

from repro.utils.bits import (
    bit,
    bits,
    fold_xor,
    mask,
    parity,
    popcount,
    set_bit,
)
from repro.utils.rng import DeterministicRng

__all__ = [
    "DeterministicRng",
    "bit",
    "bits",
    "fold_xor",
    "mask",
    "parity",
    "popcount",
    "set_bit",
]
