"""Deterministic random number generation for repeatable experiments.

All attack loops in the paper rely on *random* train-branch directions
(Section 4.2).  To keep every test and benchmark reproducible we route all
randomness through a single seeded generator rather than the global
``random`` module.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded wrapper around :class:`random.Random`.

    The wrapper exists so that (a) simulator components never touch global
    random state and (b) the handful of operations the reproduction needs
    have explicit, documented semantics.
    """

    def __init__(self, seed: int = 0xC0FFEE):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Return an independent generator derived from this one.

        Forking lets concurrent experiment arms (e.g. per-doublet read
        loops) draw from decorrelated streams while staying reproducible.
        """
        return DeterministicRng((self._seed * 0x9E3779B1 + salt) & 0xFFFFFFFFFFFF)

    def coin(self) -> bool:
        """A fair coin flip -- the paper's ``k = rand()`` train direction."""
        return self._random.random() < 0.5

    def integer(self, low: int, high: int) -> int:
        """A uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def value_bits(self, width: int) -> int:
        """A uniform ``width``-bit integer."""
        return self._random.getrandbits(width) if width > 0 else 0

    def doublet(self) -> int:
        """A uniform 2-bit value, the unit of the PHR."""
        return self._random.getrandbits(2)

    def bytes(self, count: int) -> bytes:
        """``count`` uniform random bytes (e.g. AES plaintexts/keys)."""
        return bytes(self._random.getrandbits(8) for _ in range(count))

    def choice(self, items: Sequence[T]) -> T:
        """A uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffled(self, items: Sequence[T]) -> List[T]:
        """Return a shuffled copy of ``items``."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy
