"""Bit-manipulation helpers.

Every structure in the conditional branch predictor (the PHR, the branch
footprint, the PHT index and tag hashes) is specified at the level of
individual address bits, so the whole reproduction leans on these few
primitives.  They operate on arbitrary-precision Python integers.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> mask(4)
    15
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = least significant) of ``value``.

    >>> bit(0b1010, 1)
    1
    >>> bit(0b1010, 2)
    0
    """
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the inclusive bit-slice ``value[high:low]`` as an integer.

    Mirrors the hardware notation used throughout the paper, e.g.
    ``PC[12:0]`` is ``bits(pc, 12, 0)``.

    >>> bits(0b110100, 4, 2)
    5
    """
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    return (value >> low) & mask(high - low + 1)


def set_bit(value: int, index: int, bit_value: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit_value`` (0 or 1)."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value}")
    cleared = value & ~(1 << index)
    return cleared | (bit_value << index)


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``."""
    if value < 0:
        raise ValueError("popcount of a negative value is undefined here")
    return bin(value).count("1")


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    return popcount(value) & 1


def fold_xor(value: int, total_width: int, chunk_width: int) -> int:
    """Fold ``value`` (``total_width`` bits) into ``chunk_width`` bits by XOR.

    This is the classic history-folding operation used by TAGE-style
    predictors to compress a long global history into a short table index:
    the value is split into consecutive ``chunk_width``-bit chunks (the last
    one possibly shorter) and all chunks are XORed together.

    >>> fold_xor(0b1111_0000_1010, 12, 4)
    5
    """
    if chunk_width <= 0:
        raise ValueError(f"chunk width must be positive, got {chunk_width}")
    if total_width < 0:
        raise ValueError(f"total width must be non-negative, got {total_width}")
    value &= mask(total_width)
    folded = 0
    while value:
        folded ^= value & mask(chunk_width)
        value >>= chunk_width
    return folded


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` bits within a ``width``-bit word."""
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)
