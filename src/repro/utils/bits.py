"""Bit-manipulation helpers.

Every structure in the conditional branch predictor (the PHR, the branch
footprint, the PHT index and tag hashes) is specified at the level of
individual address bits, so the whole reproduction leans on these few
primitives.  They operate on arbitrary-precision Python integers.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> mask(4)
    15
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = least significant) of ``value``.

    >>> bit(0b1010, 1)
    1
    >>> bit(0b1010, 2)
    0
    """
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the inclusive bit-slice ``value[high:low]`` as an integer.

    Mirrors the hardware notation used throughout the paper, e.g.
    ``PC[12:0]`` is ``bits(pc, 12, 0)``.

    >>> bits(0b110100, 4, 2)
    5
    """
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    return (value >> low) & mask(high - low + 1)


def set_bit(value: int, index: int, bit_value: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit_value`` (0 or 1)."""
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value}")
    cleared = value & ~(1 << index)
    return cleared | (bit_value << index)


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``."""
    if value < 0:
        raise ValueError("popcount of a negative value is undefined here")
    return bin(value).count("1")


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    return popcount(value) & 1


def fold_xor_reference(value: int, total_width: int, chunk_width: int) -> int:
    """Chunk-at-a-time XOR fold -- the executable specification.

    Walks the value one ``chunk_width`` slice per iteration, exactly as the
    fold is defined.  :func:`fold_xor` is the O(log) production
    implementation; ``tests/test_bits.py`` and the hot-path property tests
    in ``tests/test_shortcut_equivalence.py`` pin the two bit-identical.
    """
    if chunk_width <= 0:
        raise ValueError(f"chunk width must be positive, got {chunk_width}")
    if total_width < 0:
        raise ValueError(f"total width must be non-negative, got {total_width}")
    value &= mask(total_width)
    folded = 0
    while value:
        folded ^= value & mask(chunk_width)
        value >>= chunk_width
    return folded


def fold_schedule(total_width: int, chunk_width: int):
    """The ``(shift, mask)`` halving steps that fold ``total_width`` bits
    into ``chunk_width`` by XOR.

    Each step folds the value at a cut point that is a multiple of
    ``chunk_width`` and at least half the remaining width, so the step
    ``v = (v & mask) ^ (v >> shift)`` preserves the chunked XOR fold while
    (at least) halving the width.  ``len(schedule)`` is logarithmic in
    ``total_width / chunk_width``; callers on hot paths precompute it.
    """
    if chunk_width <= 0:
        raise ValueError(f"chunk width must be positive, got {chunk_width}")
    if total_width < 0:
        raise ValueError(f"total width must be non-negative, got {total_width}")
    schedule = []
    width = total_width
    while width > chunk_width:
        half = (width + 1) // 2
        cut = ((half + chunk_width - 1) // chunk_width) * chunk_width
        schedule.append((cut, (1 << cut) - 1))
        width = cut
    return tuple(schedule)


def compiled_fold(total_width: int, chunk_width: int):
    """A specialised ``value -> fold_xor(value, total_width, chunk_width)``.

    Generates a straight-line function with the :func:`fold_schedule`
    steps unrolled and the masks baked in as constants, which shaves the
    loop and tuple-unpack overhead off the innermost predictor hot path
    (every PHT refold).  Bit-identical to :func:`fold_xor` by
    construction; the input must already be masked to ``total_width``.
    """
    lines = ["def fold(value):"]
    for cut, cut_mask in fold_schedule(total_width, chunk_width):
        lines.append(f"    value = (value & {cut_mask}) ^ (value >> {cut})")
    lines.append("    return value")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - constants baked above
    return namespace["fold"]


def fold_xor(value: int, total_width: int, chunk_width: int) -> int:
    """Fold ``value`` (``total_width`` bits) into ``chunk_width`` bits by XOR.

    This is the classic history-folding operation used by TAGE-style
    predictors to compress a long global history into a short table index:
    the value is split into consecutive ``chunk_width``-bit chunks (the last
    one possibly shorter) and all chunks are XORed together.

    Implemented by folding the value in (chunk-aligned) halves, so a
    388-bit PHR folds in ~6 big-integer operations instead of ~48 chunk
    iterations; :func:`fold_xor_reference` retains the definitional loop
    and tests assert bit-identical results.

    >>> fold_xor(0b1111_0000_1010, 12, 4)
    5
    """
    value &= mask(total_width)
    for cut, cut_mask in fold_schedule(total_width, chunk_width):
        value = (value & cut_mask) ^ (value >> cut)
    return value


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` bits within a ``width``-bit word."""
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)
