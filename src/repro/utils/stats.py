"""Shared timing statistics: percentiles for reports and benchmarks.

One implementation serves every consumer -- the trial harness's
:class:`~repro.harness.runner.TrialReport`, the service layer's job
accounting, and the load-generator benchmark -- so "p99" means the same
number everywhere: the linear-interpolation quantile (numpy's default
``linear`` method) over the observed sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile(values, q)`` exactly: rank ``(n-1)*q/100``
    interpolated between the two surrounding order statistics.  Raises
    ``ValueError`` on an empty sample or an out-of-range ``q``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty sample is undefined")
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    return float(data[low]) + (float(data[high]) - float(data[low])) * fraction


@dataclass(frozen=True)
class TimingSummary:
    """Percentile summary of a latency/duration sample (seconds)."""

    count: int
    mean: float
    p50: float
    p99: float
    minimum: float
    maximum: float
    total: float

    def as_dict(self, digits: int = 6) -> Dict[str, float]:
        """JSON-ready form (the benchmark results-writer schema)."""
        return {
            "count": self.count,
            "mean": round(self.mean, digits),
            "p50": round(self.p50, digits),
            "p99": round(self.p99, digits),
            "min": round(self.minimum, digits),
            "max": round(self.maximum, digits),
            "total": round(self.total, digits),
        }


def summarize_timings(values: Iterable[Optional[float]]
                      ) -> Optional[TimingSummary]:
    """A :class:`TimingSummary` over the non-``None`` entries.

    ``None`` entries (failed trials never timed) are skipped; an empty
    effective sample yields ``None`` rather than a summary of nothing.
    """
    data = sorted(v for v in values if v is not None)
    if not data:
        return None
    total = sum(data)
    return TimingSummary(
        count=len(data),
        mean=total / len(data),
        p50=percentile(data, 50),
        p99=percentile(data, 99),
        minimum=data[0],
        maximum=data[-1],
        total=total,
    )
