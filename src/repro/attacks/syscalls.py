"""A simulated kernel for the user/kernel boundary experiments (Sec 7.1).

The paper measures that "the syscall entrance and exit introduce
approximately 23 and 7 branch outcomes into the PHR" on kernel
6.3.0-generic, leaving room to "capture over 160 unique branch histories"
of the syscall body through the Read PHR macro.  This module models that:
a fixed 23-taken-branch entry stub, per-syscall bodies whose branch
patterns are deterministic functions of the syscall, and a 7-taken-branch
exit stub.  All kernel branches live at high (kernel-half) addresses and
run through the same shared CBP -- the paper's central observation being
precisely that nothing is flushed or partitioned at this boundary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cpu.machine import Machine

#: Kernel code region (the model keeps full 64-bit addresses; only the
#: low bits participate in footprints and PHT indexing, as on hardware).
KERNEL_TEXT_BASE = 0xFFFF_FFFF_8100_0000

#: Branch counts measured by the paper.
ENTRY_TAKEN_BRANCHES = 23
EXIT_TAKEN_BRANCHES = 7


@dataclass
class SyscallResult:
    """Outcome of one simulated syscall."""

    name: str
    entry_taken: int
    body_taken: int
    exit_taken: int
    phr_value: int

    @property
    def total_taken(self) -> int:
        return self.entry_taken + self.body_taken + self.exit_taken


def _branch_stream(label: str, count: int,
                   base: int) -> List[Tuple[int, int, bool, bool]]:
    """A deterministic pseudo-random branch sequence for a kernel region.

    Each element is ``(pc, target, conditional, taken)``; the stream is a
    pure function of ``label`` so repeated syscalls behave identically
    (the determinism assumption of the threat model).
    """
    digest = hashlib.sha256(label.encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    branches: List[Tuple[int, int, bool, bool]] = []
    pc = base
    state = seed
    produced = 0
    while produced < count:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        pc += ((state >> 5) % 1024 + 1) * 4
        target = pc + ((state >> 17) % 512 + 1) * 4
        conditional = (state >> 33) % 4 != 0  # ~75% conditional
        branches.append((pc, target, conditional, True))
        produced += 1
        # Sprinkle in some not-taken conditionals (they do not move the
        # PHR but do exercise the PHTs).
        if (state >> 41) % 3 == 0:
            pc += 8
            branches.append((pc, pc + 64, True, False))
    return branches


class SimulatedKernel:
    """Syscall entry/exit stubs plus named syscall bodies."""

    #: Body lengths (taken branches) per modeled syscall; `custom` mirrors
    #: the paper's "our own customized syscalls".
    DEFAULT_BODIES: Dict[str, int] = {
        "getppid": 41,
        "geteuid": 35,
        "custom_small": 12,
        "custom_large": 120,
    }

    def __init__(self, bodies: Dict[str, int] = None):  # type: ignore[assignment]
        self.bodies = dict(self.DEFAULT_BODIES if bodies is None else bodies)
        self._entry = _branch_stream("syscall-entry", ENTRY_TAKEN_BRANCHES,
                                     KERNEL_TEXT_BASE)
        self._exit = _branch_stream("syscall-exit", EXIT_TAKEN_BRANCHES,
                                    KERNEL_TEXT_BASE + 0x10_0000)
        self._body_streams = {
            name: _branch_stream(f"syscall-body-{name}", count,
                                 KERNEL_TEXT_BASE + 0x20_0000)
            for name, count in self.bodies.items()
        }

    def syscall_names(self) -> List[str]:
        """The modeled syscalls."""
        return sorted(self.bodies)

    def entry_branches(self) -> List[Tuple[int, int, bool, bool]]:
        """The kernel-entry branch stream (shared by every syscall)."""
        return list(self._entry)

    def body_branches(self, name: str) -> List[Tuple[int, int, bool, bool]]:
        """The body branch stream of ``name``."""
        return list(self._body_streams[name])

    def exit_branches(self) -> List[Tuple[int, int, bool, bool]]:
        """The kernel-exit branch stream."""
        return list(self._exit)

    def invoke(self, machine: Machine, name: str,
               thread: int = 0) -> SyscallResult:
        """Run one syscall's branches through the machine's predictors."""
        if name not in self._body_streams:
            raise KeyError(f"unknown syscall {name!r}")
        machine.set_domain(thread, "kernel")
        entry_taken = machine.inject_branch_sequence(self._entry, thread)
        body_taken = machine.inject_branch_sequence(
            self._body_streams[name], thread
        )
        exit_taken = machine.inject_branch_sequence(self._exit, thread)
        machine.set_domain(thread, "user")
        return SyscallResult(
            name=name,
            entry_taken=entry_taken,
            body_taken=body_taken,
            exit_taken=exit_taken,
            phr_value=machine.phr(thread).value,
        )

    def observable_history_doublets(self, machine: Machine,
                                    name: str) -> int:
        """Syscall-local doublets visible to a post-return Read PHR.

        The PHR holds ``capacity`` doublets; the exit stub consumes a few,
        the rest cover the body and entry -- over 160 on Alder/Raptor Lake
        per the paper.
        """
        capacity = machine.config.phr_capacity
        return min(capacity - EXIT_TAKEN_BRANCHES,
                   ENTRY_TAKEN_BRANCHES + self.bodies[name])
