"""Attack-surface experiments (paper Section 7).

:mod:`repro.attacks.syscalls` models the kernel side of the user/kernel
boundary (syscall entry/exit branch stubs and per-syscall bodies);
:mod:`repro.attacks.boundaries` runs each attack primitive across every
isolation boundary of Table 2 and reports the practicality matrix.
"""

from repro.attacks.syscalls import SimulatedKernel, SyscallResult
from repro.attacks.boundaries import (
    BOUNDARIES,
    PRIMITIVES,
    BoundaryMatrix,
    evaluate_table2,
)
from repro.attacks.branchscope import BranchScopeAttack, BranchScopeReading
from repro.attacks.btb_probe import BtbProbeAttack, BtbProbeResult
from repro.attacks.history_injection import (
    HistoryInjectionAttack,
    demonstrate_history_steering,
)

__all__ = [
    "BOUNDARIES",
    "BoundaryMatrix",
    "BranchScopeAttack",
    "BranchScopeReading",
    "BtbProbeAttack",
    "BtbProbeResult",
    "HistoryInjectionAttack",
    "demonstrate_history_steering",
    "PRIMITIVES",
    "SimulatedKernel",
    "SyscallResult",
    "evaluate_table2",
]
