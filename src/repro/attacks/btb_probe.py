"""BTB probing, Jump-over-ASLR style (Evtyushkin et al. [25], Section 11).

The earliest branch-predictor side channels targeted the BTB: because the
buffer indexes and tags with partial address bits, an attacker executing
branches at chosen addresses observes *collisions* with victim branches
(a colliding attacker branch inherits the victim's cached target and
mis-speculates, which is timeable).  Jump-over-ASLR used this to find
where a victim's branches live, defeating address randomization.

Pathfinder's relationship to this baseline (paper Sections 1/11): BTB
attacks reveal *where* branches are; the CBP attacks reveal *what every
execution of them did*.  This module implements the baseline against the
simulated BTB for the comparison, and because the machine models the BTB
anyway (Figure 1 completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.machine import Machine


@dataclass
class BtbProbeResult:
    """Outcome of probing one candidate branch address."""

    probe_pc: int
    #: Whether the BTB served a target for the probe address (a collision
    #: with some resident victim branch).
    collided: bool
    #: The target the BTB predicted, when it collided.
    predicted_target: Optional[int]


class BtbProbeAttack:
    """Detects victim branch locations through BTB collisions."""

    def __init__(self, machine: Machine):
        self.machine = machine

    def probe(self, pc: int) -> BtbProbeResult:
        """Query whether a branch at ``pc`` would hit a cached BTB entry.

        On hardware the attacker executes a branch at ``pc`` and times the
        front end (a BTB hit mis-steers fetch when the attacker's real
        target differs, costing a resteer); the simulator exposes the same
        signal as the BTB prediction outcome.
        """
        predicted = self.machine.btb.predict(pc)
        return BtbProbeResult(probe_pc=pc, collided=predicted is not None,
                              predicted_target=predicted)

    def scan(self, base: int, stride: int, count: int) -> List[int]:
        """Probe ``count`` addresses from ``base``; return colliding pcs."""
        return [
            base + stride * index
            for index in range(count)
            if self.probe(base + stride * index).collided
        ]

    def locate_victim_branch(self, candidates: List[int],
                             run_victim) -> List[int]:
        """Differential scan: which candidate slots light up after the
        victim runs (the Jump-over-ASLR protocol)."""
        self.machine.btb.flush()
        before = {pc for pc in candidates if self.probe(pc).collided}
        run_victim()
        after = {pc for pc in candidates if self.probe(pc).collided}
        return sorted(after - before)
