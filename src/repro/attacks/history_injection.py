"""Branch history injection through the PHR (paper Sections 7.1/7.4/11).

Two of the paper's findings compose into a cross-privilege attack on the
*indirect* branch predictor, the vector behind Branch History Injection
(Barberis et al. [17], discussed in Section 11):

* "the PHR is not flushed [on kernel entry], allowing the user program to
  set a specific PHR value upon entry that will impact kernel
  predictions" (Section 7.1), and
* the IBP "predicts indirect branch targets using both branch address and
  the PHR" (Section 7.4), while IBPB/IBRS constrain the IBP but never
  touch the PHR.

With ``Write_PHR`` the attacker chooses the exact history a victim
indirect branch will be looked up under -- selecting which previously
trained target the IBP serves, and therefore where the victim
transiently jumps.  This module demonstrates the steering against the
simulated machine; it also shows IBPB genuinely stopping the *injection
of attacker-trained targets* while leaving the history-steering surface
(choosing among the victim's own targets) intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu.machine import Machine
from repro.isa.interpreter import BranchKind
from repro.primitives.macros import PhrMacros


@dataclass
class SteeringResult:
    """Outcome of one history-injection attempt."""

    #: Target the IBP predicted for the victim's indirect branch.
    predicted_target: Optional[int]
    #: The target the attacker wanted selected.
    desired_target: int

    @property
    def steered(self) -> bool:
        return self.predicted_target == self.desired_target


class HistoryInjectionAttack:
    """Steers a victim indirect branch by writing the PHR."""

    def __init__(self, machine: Machine, thread: int = 0):
        self.machine = machine
        self.thread = thread
        self.macros = PhrMacros(machine)

    # ------------------------------------------------------------------

    def observe_victim_training(
        self,
        branch_pc: int,
        executions: List[Tuple[int, int]],
    ) -> Dict[int, int]:
        """Run the victim's indirect branch under several histories.

        ``executions`` lists ``(phr_value, actual_target)`` pairs -- e.g.
        different syscalls reaching one dispatch point along different
        paths.  Returns the history -> target map the IBP now holds.
        """
        machine = self.machine
        phr = machine.phr(self.thread)
        trained = {}
        for phr_value, target in executions:
            phr.set_value(phr_value)
            machine.record_taken_branch(branch_pc, target,
                                        thread=self.thread,
                                        kind=BranchKind.INDIRECT)
            trained[phr_value] = target
        return trained

    def steer(self, branch_pc: int, phr_value: int,
              desired_target: int) -> SteeringResult:
        """Write the PHR and read which target the victim would get.

        The ``Write_PHR`` macro survives the domain transition (Section
        7.1), so the injected history is what the kernel-side lookup
        consumes.
        """
        machine = self.machine
        self.macros.apply_write(phr_value, thread=self.thread)
        predicted = machine.ibp.predict(branch_pc, machine.phr(self.thread))
        return SteeringResult(predicted_target=predicted,
                              desired_target=desired_target)

    def inject_attacker_target(self, branch_pc: int, phr_value: int,
                               gadget: int) -> None:
        """Spectre-v2 style: train the IBP entry from attacker code.

        The attacker executes its own indirect branch (same low PC bits)
        to ``gadget`` under the chosen history.  This is the half that
        IBPB *does* defeat.
        """
        machine = self.machine
        machine.phr(self.thread).set_value(phr_value)
        machine.record_taken_branch(branch_pc, gadget, thread=self.thread,
                                    kind=BranchKind.INDIRECT)


def demonstrate_history_steering(machine: Optional[Machine] = None) -> dict:
    """End-to-end demonstration used by tests and the bench.

    Returns a dict of booleans:

    * ``steered_a``/``steered_b`` -- the attacker selected each of the
      victim's own trained targets purely by writing the PHR;
    * ``ibpb_blocks_injection`` -- after IBPB, an attacker-trained gadget
      target is no longer served;
    * ``ibpb_spares_history_steering`` -- after IBPB, re-trained victim
      targets are again PHR-selectable (the CBP/PHR surface survives).
    """
    machine = machine if machine is not None else Machine()
    attack = HistoryInjectionAttack(machine)
    dispatch_pc = 0xFFFF_FFFF_8123_4560
    target_a = 0xFFFF_FFFF_8124_0000
    target_b = 0xFFFF_FFFF_8125_0000
    history_a = 0x1111_2222
    history_b = (0x3333 << 100) | 0x4444

    attack.observe_victim_training(
        dispatch_pc,
        [(history_a, target_a), (history_b, target_b)],
    )
    steered_a = attack.steer(dispatch_pc, history_a, target_a).steered
    steered_b = attack.steer(dispatch_pc, history_b, target_b).steered

    gadget = 0x0066_6000
    gadget_history = 0x5555
    attack.inject_attacker_target(dispatch_pc, gadget_history, gadget)
    injected = attack.steer(dispatch_pc, gadget_history, gadget).steered

    machine.ibpb()
    blocked = not attack.steer(dispatch_pc, gadget_history, gadget).steered

    # The victim re-trains in normal operation; PHR steering returns.
    attack.observe_victim_training(dispatch_pc, [(history_a, target_a)])
    after_ibpb = attack.steer(dispatch_pc, history_a, target_a).steered

    return {
        "steered_a": steered_a,
        "steered_b": steered_b,
        "injection_works_before_ibpb": injected,
        "ibpb_blocks_injection": blocked,
        "ibpb_spares_history_steering": after_ibpb,
    }
