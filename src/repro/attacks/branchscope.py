"""A BranchScope-style baseline attack (Evtyushkin et al., ASPLOS 2018).

The paper positions Pathfinder against prior CBP attacks, principally
BranchScope, which "fires off hundreds of thousands of random branches to
make the CBP use the basic predictor instead of the complex global one
... then creates collisions within the base predictor" (Section 11).
Because the base predictor is indexed by the PC alone, BranchScope can
only observe the *bias* of a branch address -- roughly the direction of
its last few executions -- whereas Pathfinder recovers the outcome of
every dynamic instance.

This module implements the baseline against the same simulated machine so
the resolution gap can be measured head to head
(``benchmarks/bench_baseline_branchscope.py``).

Protocol (adapted to the simulator):

1. **randomize** -- execute a burst of random-direction branches at
   random addresses/histories.  On hardware this de-trains the tagged
   tables; here it fills them with noise entries the victim's branches
   will not match, forcing base-predictor fallback -- same effect.
2. **prime** -- drive the base-predictor counter of the target PC to a
   known weak state through an aliased attacker branch (same PC[12:0]).
3. **victim** -- one victim invocation.
4. **probe** -- execute the aliased branch and observe the misprediction;
   with the counter primed to the weak boundary, the victim's *net* bias
   moves it across or not, revealing the sign of the bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cpu.machine import Machine
from repro.utils.rng import DeterministicRng


@dataclass
class BranchScopeReading:
    """One bias measurement of a victim branch address."""

    pc: int
    #: True = the address biased toward taken, False = toward not-taken.
    biased_taken: bool
    #: Probe mispredictions used to make the call.
    probe_mispredictions: int


class BranchScopeAttack:
    """Base-predictor collision attack (the paper's prior-work baseline)."""

    def __init__(
        self,
        machine: Machine,
        randomize_branches: int = 2000,
        probe_repetitions: int = 4,
        pc_alias_offset: int = 0x0100_0000,
        rng: Optional[DeterministicRng] = None,
    ):
        if pc_alias_offset & 0x1FFF:
            raise ValueError("alias offset must preserve PC[12:0]")
        self.machine = machine
        self.randomize_branches = randomize_branches
        self.probe_repetitions = probe_repetitions
        self.pc_alias_offset = pc_alias_offset
        self.rng = rng if rng is not None else DeterministicRng(0xB5C0)

    # ------------------------------------------------------------------

    def randomize_predictor(self, thread: int = 0) -> None:
        """Fill the tagged tables with noise (the 'hundreds of thousands
        of random branches' step, scaled to the simulator's table size)."""
        machine = self.machine
        phr = machine.phr(thread)
        width = 2 * machine.config.phr_capacity
        for _ in range(self.randomize_branches):
            phr.set_value(self.rng.value_bits(width))
            pc = 0x0900_0000 + self.rng.integer(0, 0xFFFF) * 4
            machine.observe_conditional(pc, pc + 0x40, self.rng.coin(),
                                        thread=thread)

    def _aliased(self, pc: int) -> int:
        return pc + self.pc_alias_offset

    def prime_to_boundary(self, pc: int, thread: int = 0) -> None:
        """Leave the base counter of ``pc`` at the weakly-not-taken
        boundary, so a single net-taken victim bias flips the prediction.

        Modeled as direct base-counter training: on hardware BranchScope
        achieves the same state with short runs of aliased taken/not-taken
        branches (whose only lasting CBP effect, after the randomization
        step, is exactly these base-counter updates).
        """
        machine = self.machine
        attacker_pc = self._aliased(pc)
        counter = machine.cbp.base.counter_at(attacker_pc)
        while counter.value > counter.threshold - 1:
            machine.cbp.base.update(attacker_pc, False)
        while counter.value < counter.threshold - 1:
            machine.cbp.base.update(attacker_pc, True)

    def probe_bias(self, pc: int, thread: int = 0) -> BranchScopeReading:
        """Read the sign of the victim-induced movement of the counter.

        A single taken probe at the aliased address: if the victim's net
        updates pushed the shared counter across the threshold, the probe
        predicts taken (no misprediction -- measured through timing on
        hardware, through the misprediction signal here); otherwise it
        mispredicts.
        """
        machine = self.machine
        attacker_pc = self._aliased(pc)
        machine.phr(thread).clear()
        mispredicted = machine.observe_conditional(
            attacker_pc, attacker_pc + 0x40, True, thread=thread
        )
        return BranchScopeReading(pc=pc, biased_taken=not mispredicted,
                                  probe_mispredictions=int(mispredicted))

    # ------------------------------------------------------------------

    def read_branch_bias(self, pc: int, run_victim: Callable[[], None],
                         thread: int = 0) -> BranchScopeReading:
        """Full randomize+prime+victim+probe cycle for one branch PC.

        Returns the *bias* of the branch -- the only quantity the base
        predictor exposes.  Contrast with ``Read_PHR`` + Pathfinder, which
        recover the full per-instance outcome sequence.
        """
        self.randomize_predictor(thread=thread)
        self.prime_to_boundary(pc, thread=thread)
        run_victim()
        return self.probe_bias(pc, thread=thread)
