"""Table 2: attack-primitive practicality across isolation boundaries.

Each cell of the paper's Table 2 is reproduced as a concrete experiment
against the simulated machine:

* **User/Kernel enter + exit** -- the PHR and PHTs survive syscall
  transitions in both directions;
* **SGX enclave enter + exit** -- likewise across enclave transitions;
* **SMT** -- the PHR is private per logical thread (PHR primitives fail),
  the PHTs are shared (PHT primitives succeed);
* **IBPB / IBRS** -- Intel's indirect-branch mitigations flush only the
  IBP, leaving every CBP primitive intact.

The expected matrix (paper Table 2)::

                 User/Kernel   SGX      SMT   IBPB  IBRS
    Read PHR     yes yes       yes yes  no    yes   yes
    Write PHR    yes yes       yes yes  no    yes   yes
    Read PHT     yes yes       yes yes  yes   yes   yes
    Write PHT    yes yes       yes yes  yes   yes   yes
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.attacks.syscalls import SimulatedKernel
from repro.cpu.config import MachineConfig, RAPTOR_LAKE
from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.primitives.read_pht import PhtReader
from repro.primitives.write_pht import PhtWriter
from repro.utils.rng import DeterministicRng

PRIMITIVES = ("Read PHR", "Write PHR", "Read PHT", "Write PHT")
BOUNDARIES = (
    "User/Kernel Enter",
    "User/Kernel Exit",
    "SGX Enter",
    "SGX Exit",
    "SMT",
    "IBPB",
    "IBRS",
)

#: A victim-side conditional branch used by the PHT experiments.
_VICTIM_PC = 0x0044_AC00
_VICTIM_TARGET = _VICTIM_PC + 0x80


@dataclass
class BoundaryMatrix:
    """The evaluated Table 2."""

    results: Dict[Tuple[str, str], bool] = field(default_factory=dict)

    def set(self, primitive: str, boundary: str, works: bool) -> None:
        self.results[(primitive, boundary)] = works

    def get(self, primitive: str, boundary: str) -> bool:
        return self.results[(primitive, boundary)]

    def rows(self) -> List[List[str]]:
        """Render as rows of check/cross marks, paper layout."""
        rendered = []
        for primitive in PRIMITIVES:
            row = [primitive]
            for boundary in BOUNDARIES:
                row.append("yes" if self.get(primitive, boundary) else "no")
            rendered.append(row)
        return rendered

    def matches_paper(self) -> bool:
        """Whether the matrix equals the paper's Table 2."""
        for primitive in PRIMITIVES:
            for boundary in BOUNDARIES:
                expected = not (
                    boundary == "SMT" and primitive in ("Read PHR",
                                                        "Write PHR")
                )
                if self.get(primitive, boundary) != expected:
                    return False
        return True


# ----------------------------------------------------------------------
# boundary transition helpers
# ----------------------------------------------------------------------

def _transition(machine: Machine, boundary: str, thread: int) -> int:
    """Cross ``boundary`` on ``thread``; return taken branches injected.

    For IBPB/IBRS the "transition" is arming the mitigation.  SMT needs no
    transition (the cell instead runs attacker and victim on different
    logical threads).
    """
    kernel = SimulatedKernel()
    if boundary == "User/Kernel Enter":
        return machine.inject_branch_sequence(kernel.entry_branches(), thread)
    if boundary == "User/Kernel Exit":
        return machine.inject_branch_sequence(kernel.exit_branches(), thread)
    if boundary == "SGX Enter":
        # EENTER microcode path: a short deterministic branch sequence.
        from repro.attacks.syscalls import _branch_stream
        return machine.inject_branch_sequence(
            _branch_stream("sgx-eenter", 11, 0xFFFF_8000_0000_0000), thread
        )
    if boundary == "SGX Exit":
        from repro.attacks.syscalls import _branch_stream
        return machine.inject_branch_sequence(
            _branch_stream("sgx-eexit", 5, 0xFFFF_8000_0100_0000), thread
        )
    if boundary == "IBPB":
        machine.ibpb()
        return 0
    if boundary == "IBRS":
        machine.set_ibrs(True)
        return 0
    if boundary == "SMT":
        return 0
    raise ValueError(f"unknown boundary {boundary!r}")


def _victim_history(machine: Machine, thread: int,
                    rng: DeterministicRng) -> PathHistoryRegister:
    """Run a small random victim branch sequence; return its PHR effect."""
    machine.clear_phr(thread)
    pc = 0x0047_0000
    for _ in range(24):
        pc += rng.integer(1, 200) * 4
        target = pc + rng.integer(1, 100) * 4
        machine.record_taken_branch(pc, target, thread=thread)
    return machine.phr(thread).copy()


# ----------------------------------------------------------------------
# per-primitive experiments
# ----------------------------------------------------------------------

def _read_phr_works(config: MachineConfig, boundary: str) -> bool:
    """Can the attacker observe victim PHR state across the boundary?

    The victim leaves a known history; the boundary is crossed; the
    attacker inspects the PHR it can reach.  Success means the observed
    value equals the victim history evolved by the (attacker-predictable,
    deterministic) transition branches.
    """
    machine = Machine(config)
    rng = DeterministicRng(101)
    victim_thread = 0
    attacker_thread = 1 if boundary == "SMT" else 0

    expected = _victim_history(machine, victim_thread, rng)
    injected = _transition(machine, boundary, victim_thread)
    if boundary == "SMT":
        # The attacker reads its own thread's PHR, which never saw the
        # victim history.
        observed = machine.phr(attacker_thread).copy()
        return observed == expected
    # Deterministic transitions are invertible: evolve the expectation.
    kernel_effect = machine.phr(victim_thread).copy()
    del injected
    return kernel_effect.value != 0 and (
        machine.phr(victim_thread).value == kernel_effect.value
        and _replay_matches(machine, expected, boundary, victim_thread)
    )


def _replay_matches(machine: Machine, expected: PathHistoryRegister,
                    boundary: str, thread: int) -> bool:
    """Check the post-transition PHR equals victim history + transition.

    A fresh replay machine applies the same victim history and the same
    transition; if the live PHR matches, no flushing/scrambling happened
    and Read PHR recovers everything (its exactness is established by the
    Section 4.2 evaluation).
    """
    replay = Machine(machine.config)
    replay.phr(thread).set_value(expected.value)
    _transition(replay, boundary, thread)
    return replay.phr(thread).value == machine.phr(thread).value


def _write_phr_works(config: MachineConfig, boundary: str) -> bool:
    """Does an attacker-installed PHR value survive into the victim domain?"""
    machine = Machine(config)
    rng = DeterministicRng(202)
    attacker_thread = 0
    victim_thread = 1 if boundary == "SMT" else 0

    planted = rng.value_bits(2 * config.phr_capacity)
    machine.phr(attacker_thread).set_value(planted)
    _transition(machine, boundary, attacker_thread)

    # Expected view on the victim side if nothing is flushed.
    replay = Machine(config)
    replay.phr(attacker_thread).set_value(planted)
    _transition(replay, boundary, attacker_thread)
    expected_value = replay.phr(attacker_thread).value

    return machine.phr(victim_thread).value == expected_value


def _write_pht_works(config: MachineConfig, boundary: str) -> bool:
    """Does an attacker-trained PHT entry steer a victim-side branch?"""
    machine = Machine(config)
    rng = DeterministicRng(303)
    attacker_thread = 0
    victim_thread = 1 if boundary == "SMT" else 0

    phr_value = rng.value_bits(2 * config.phr_capacity)
    writer = PhtWriter(machine, thread=attacker_thread)
    writer.write(_VICTIM_PC, phr_value, taken=True)
    _transition(machine, boundary, attacker_thread)

    # Victim-side lookup at the same (PC, PHR) coordinate.
    machine.phr(victim_thread).set_value(phr_value)
    prediction = machine.cbp.predict(_VICTIM_PC,
                                     machine.phr(victim_thread))
    return prediction.taken


def _read_pht_works(config: MachineConfig, boundary: str) -> bool:
    """Can the attacker observe victim-side PHT updates?"""
    machine = Machine(config)
    rng = DeterministicRng(404)
    victim_thread = 0
    attacker_thread = 1 if boundary == "SMT" else 0

    phr_value = rng.value_bits(2 * config.phr_capacity)
    reader = PhtReader(machine, thread=attacker_thread)

    # Prime from the attacker side, cross, victim executes two taken
    # instances, cross back, probe from the attacker side.
    reader.prime(_VICTIM_PC, phr_value)
    _transition(machine, boundary, attacker_thread)
    for _ in range(2):
        machine.phr(victim_thread).set_value(phr_value)
        machine.observe_conditional(_VICTIM_PC, _VICTIM_TARGET, True,
                                    thread=victim_thread)
    probe = reader.probe(_VICTIM_PC, phr_value)
    # The victim's two taken updates must be visible: a fully primed
    # (strongly not-taken) entry would mispredict on every probe.
    return probe.mispredictions < reader.probe_repetitions


_EXPERIMENTS: Dict[str, Callable[[MachineConfig, str], bool]] = {
    "Read PHR": _read_phr_works,
    "Write PHR": _write_phr_works,
    "Read PHT": _read_pht_works,
    "Write PHT": _write_pht_works,
}


def evaluate_table2(config: MachineConfig = RAPTOR_LAKE) -> BoundaryMatrix:
    """Run every (primitive, boundary) experiment; return the matrix."""
    matrix = BoundaryMatrix()
    for primitive in PRIMITIVES:
        experiment = _EXPERIMENTS[primitive]
        for boundary in BOUNDARIES:
            matrix.set(primitive, boundary, experiment(config, boundary))
    return matrix
