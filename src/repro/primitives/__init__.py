"""The Pathfinder attack primitives (paper Sections 4 and 5).

The paper's central contribution is a set of primitives that make the
conditional branch predictor read/writable "as easy as memory":

* :class:`PhrMacros` -- ``Shift_PHR`` / ``Clear_PHR`` / ``Write_PHR``
  (Section 4, fundamental techniques and Attack Primitive "Write PHR"),
* :class:`PhrReader` -- ``Read_PHR`` (Attack Primitive 1, Figure 4),
* :class:`PhtWriter` -- ``Write_PHT`` (Attack Primitive 2),
* :class:`PhtReader` -- ``Read_PHT`` (Attack Primitive 3),
* :class:`ExtendedPhrReader` -- ``Extended_Read_PHR`` (Attack Primitive 4,
  Figure 5).
"""

from repro.primitives.errors import (
    DoubletCountError,
    HistoryLengthError,
    PrimitiveProtocolError,
)
from repro.primitives.macros import PhrMacros
from repro.primitives.victim import VictimHandle
from repro.primitives.read_phr import PhrReadResult, PhrReader
from repro.primitives.write_pht import PhtWriter
from repro.primitives.read_pht import PhtReader
from repro.primitives.extended_read import ExtendedPhrReader, TakenBranch

__all__ = [
    "DoubletCountError",
    "ExtendedPhrReader",
    "HistoryLengthError",
    "PrimitiveProtocolError",
    "PhrMacros",
    "PhrReadResult",
    "PhrReader",
    "PhtReader",
    "PhtWriter",
    "TakenBranch",
    "VictimHandle",
]
