"""``Read_PHT`` -- Attack Primitive 3 (paper Section 4.4).

A prime+test+probe protocol over one PHT entry:

1. **prime** -- drive the entry's counter to strongly not-taken by
   executing aliasing not-taken branches at the target ``(PC, PHR)``;
2. **test** -- the caller runs the victim, whose branch updates the entry;
3. **probe** -- execute taken branches at the same coordinate, counting
   mispredictions.  A counter left at strongly-not-taken (0) mispredicts
   four times before crossing the 3-bit threshold; a counter the victim
   moved up twice mispredicts only twice; and so on.  The misprediction
   count therefore reveals how many taken updates the victim contributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cpu.machine import Machine
from repro.replay import ReplayEngine


@dataclass
class PhtProbeResult:
    """Outcome of one probe phase."""

    mispredictions: int
    probes: int

    @property
    def inferred_counter(self) -> int:
        """Estimated counter value at probe start.

        With a ``b``-bit counter primed to 0, a probe of taken branches
        mispredicts until the counter reaches the threshold ``2^(b-1)``,
        so ``mispredictions == threshold - start_value`` (clamped).
        """
        return max(0, 4 - self.mispredictions)


class PhtReader:
    """Implements ``Read_PHT(PC, PHR)``."""

    def __init__(
        self,
        machine: Machine,
        thread: int = 0,
        prime_repetitions: int = 8,
        probe_repetitions: int = 4,
        pc_alias_offset: int = 0x1000_0000,
    ):
        self.machine = machine
        self.thread = thread
        self.prime_repetitions = prime_repetitions
        self.probe_repetitions = probe_repetitions
        self.pc_alias_offset = pc_alias_offset

    def _attacker_coords(self, pc: int) -> tuple:
        attacker_pc = pc + self.pc_alias_offset
        return attacker_pc, attacker_pc + 0x40

    def prime(self, pc: int, phr_value: int) -> None:
        """Drive the entry at ``(pc, phr_value)`` to strongly not-taken.

        Priming happens in two steps.  First, a few deliberately
        contrarian branches (each resolving against the current
        prediction) force the predictor to allocate down its table
        hierarchy until the *longest* table owns the coordinate -- an
        attacker does this by timing its own branch and flipping the
        outcome.  Then a burst of not-taken branches saturates that
        entry's counter to zero; because the provider is already the
        longest table, no further allocation can displace it, and the
        subsequent victim/probe phases read and write this one counter,
        giving the clean ``mispredictions == threshold - counter``
        arithmetic of Section 4.4.
        """
        machine = self.machine
        phr = machine.phr(self.thread)
        attacker_pc, attacker_target = self._attacker_coords(pc)
        table_count = len(machine.cbp.tables)
        for _ in range(table_count):
            phr.set_value(phr_value)
            prediction = machine.cbp.predict(attacker_pc, phr)
            machine.observe_conditional(attacker_pc, attacker_target,
                                        not prediction.taken,
                                        thread=self.thread)
        for _ in range(self.prime_repetitions):
            phr.set_value(phr_value)
            machine.observe_conditional(attacker_pc, attacker_target, False,
                                        thread=self.thread)

    def probe(self, pc: int, phr_value: int) -> PhtProbeResult:
        """Execute taken probes, counting mispredictions."""
        machine = self.machine
        phr = machine.phr(self.thread)
        attacker_pc, attacker_target = self._attacker_coords(pc)
        mispredictions = 0
        for _ in range(self.probe_repetitions):
            phr.set_value(phr_value)
            if machine.observe_conditional(attacker_pc, attacker_target, True,
                                           thread=self.thread):
                mispredictions += 1
        return PhtProbeResult(mispredictions=mispredictions,
                              probes=self.probe_repetitions)

    def read(self, pc: int, phr_value: int, run_victim) -> PhtProbeResult:
        """Full prime+test+probe cycle.

        ``run_victim`` is a zero-argument callable executed between the
        prime and probe phases.
        """
        self.prime(pc, phr_value)
        run_victim()
        return self.probe(pc, phr_value)

    def read_batch(
        self,
        coordinates: Sequence[Tuple[int, int]],
        run_victim,
        reuse: str = "checkpoint",
        store=None,
        store_scope=None,
    ) -> List[PhtProbeResult]:
        """Read several ``(pc, phr_value)`` coordinates of *one* victim run.

        The shared prefix -- prime every coordinate, then invoke the
        victim once -- executes through a :class:`~repro.replay.ReplayEngine`
        checkpoint; each coordinate's probe replays as a restored suffix,
        so probing coordinate ``i`` cannot disturb coordinate ``j``'s
        entry (probes are taken branches: they *write* the counters they
        read).  ``reuse='none'`` is the naive twin that re-runs the whole
        prefix per coordinate; both orders of execution are bit-identical
        because the prefix is deterministic.  Coordinates must not alias
        each other (distinct PHT entries), or the batched prime differs
        from per-coordinate protocols.

        With a shared :class:`~repro.service.store.SnapshotStore`, the
        primed+victim prefix is published/consulted under a content
        address, letting repeated batches against the same victim (other
        readers, other service workers, later runs) skip the prefix
        build.  ``run_victim`` is an arbitrary callable the store cannot
        digest, so callers must pass ``store_scope`` naming the victim's
        behaviour; the reader folds in the machine profile, live machine
        state, thread, prime parameters, and coordinate list so distinct
        batch setups never collide.
        """
        coordinates = list(coordinates)
        if store is not None:
            if store_scope is None:
                raise ValueError(
                    "read_batch with a shared store needs a store_scope "
                    "identifying run_victim (callables have no content "
                    "address)")
            from repro.service.store import machine_digest, profile_digest
            store_scope = (
                "read_pht",
                profile_digest(self.machine.config),
                machine_digest(self.machine),
                self.thread,
                self.prime_repetitions,
                self.pc_alias_offset,
                tuple(coordinates),
                store_scope,
            )
        engine = ReplayEngine(self.machine, reuse=reuse, store=store,
                              store_scope=store_scope)

        def prefix() -> None:
            for pc, phr_value in coordinates:
                self.prime(pc, phr_value)
            run_victim()

        key = engine.checkpoint(("read_pht", "primed+victim"), prefix)
        return [
            engine.evaluate(key, lambda pc=pc, value=value:
                            self.probe(pc, value))
            for pc, value in coordinates
        ]
