"""Named errors for the attack primitives.

These subclass :class:`ValueError` so pre-existing callers catching the
generic class keep working, while new callers (and the regression tests)
can pin the precise failure mode.
"""

from __future__ import annotations


class PrimitiveProtocolError(ValueError):
    """A primitive was driven outside its measurement protocol."""


class DoubletCountError(PrimitiveProtocolError):
    """A requested doublet count exceeds what the primitive can deliver.

    Raised instead of silently truncating: a truncated read looks like a
    successful short history recovery and corrupts downstream path
    search results.
    """


class HistoryLengthError(PrimitiveProtocolError):
    """An observed-history argument has an impossible length."""
