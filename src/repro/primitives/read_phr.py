"""``Read_PHR`` -- Attack Primitive 1 (paper Section 4.2, Figure 4).

The primitive leaks the PHR value left behind by a victim, one doublet at
a time.  For doublet ``i`` the attacker runs a loop around a *train*
branch whose direction is a fresh random bit ``k`` each iteration and a
*test* branch with the same direction:

* taken path (``k == 0``): ``Clear_PHR``; call the victim (PHR becomes
  ``P``); ``Shift_PHR[C-1-i]`` -- the PHR now holds
  ``[P_i, P_{i-1}, ..., P_0, 0, ...]`` in its top doublets;
* not-taken path: ``Write_PHR`` of ``[X, P_{i-1}, ..., P_0, 0, ...]`` with
  the already-recovered low doublets and a guess ``X`` on top.

If ``X != P_i`` the two paths give the test branch two distinct PHR
contexts, each perfectly correlated with ``k``; the CBP learns both and
the test branch stops mispredicting.  If ``X == P_i`` the contexts
collide, the predictor sees a 50/50 outcome in one context, and the test
branch mispredicts ~50% of the time.  The doublet is the guess with the
*highest* misprediction rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.primitives.errors import DoubletCountError
from repro.primitives.victim import VictimHandle
from repro.replay import ReplayEngine
from repro.utils.rng import DeterministicRng

#: Accepted prefix-reuse policies for the reader.
#:
#: * ``checkpoint`` -- run ``Clear_PHR; victim()`` once, checkpoint the
#:   machine through :class:`~repro.replay.ReplayEngine`, and measure
#:   every guess as a restored suffix (the fast path, default);
#: * ``none`` -- the naive twin: re-run the prefix from scratch for
#:   every guess.  Bit-identical to ``checkpoint`` by construction
#:   (property-tested); exists so benchmarks can measure the gap;
#: * ``inline`` -- the pre-replay behaviour: no restores at all, state
#:   accumulates across guesses and the victim's post-call PHR is cached
#:   after its first in-loop invocation.
REUSE_MODES = ("checkpoint", "none", "inline")

#: Default attacker train/test branch locations.  The exact values are
#: arbitrary; they only need to stay clear of victim code and of the macro
#: regions, and to differ from each other in their low 16 bits so the two
#: branches never alias in the PHTs.
TRAIN_PC = 0x6660_0000
TRAIN_TARGET = 0x6660_0040
TEST_PC = 0x6661_0100
TEST_TARGET = 0x6661_0140


@dataclass
class PhrReadResult:
    """Result of a full PHR read."""

    #: Recovered doublets, least significant (most recent branch) first.
    doublets: List[int]
    #: Misprediction rate observed for the winning guess of each doublet.
    confidence: List[float]
    #: Total train/test iterations spent.
    iterations: int

    @property
    def value(self) -> int:
        """The recovered PHR as a raw integer."""
        return PathHistoryRegister.from_doublets(self.doublets).value

    def as_phr(self, capacity: Optional[int] = None) -> PathHistoryRegister:
        """The recovered PHR as a register object."""
        return PathHistoryRegister.from_doublets(
            self.doublets,
            capacity=capacity if capacity is not None else len(self.doublets),
        )


class PhrReader:
    """Implements ``Read_PHR`` against a shared machine.

    ``warmup`` iterations let the CBP learn each context before ``measure``
    iterations count test-branch mispredictions.  The defaults are tuned
    for the simulator's deterministic predictor; the paper uses far more
    iterations to average out hardware noise.
    """

    def __init__(
        self,
        machine: Machine,
        victim: VictimHandle,
        thread: int = 0,
        warmup: int = 16,
        measure: int = 16,
        rng: Optional[DeterministicRng] = None,
        train_pc: int = TRAIN_PC,
        test_pc: int = TEST_PC,
        reuse: str = "checkpoint",
        store=None,
        store_scope=None,
    ):
        if reuse not in REUSE_MODES:
            raise ValueError(
                f"unknown reuse mode {reuse!r}; expected one of {REUSE_MODES}")
        self.machine = machine
        self.victim = victim
        self.thread = thread
        self.warmup = warmup
        self.measure = measure
        self.rng = rng if rng is not None else DeterministicRng(0x5EED)
        self.train_pc = train_pc
        self.train_target = train_pc + 0x40
        self.test_pc = test_pc
        self.test_target = test_pc + 0x40
        self._victim_phr_cache: Optional[int] = None
        self.iterations = 0
        self.reuse = reuse
        if store is not None and reuse == "inline":
            raise ValueError("reuse='inline' has no replay engine to "
                             "attach a snapshot store to")
        if store is not None and store_scope is None:
            store_scope = self._default_store_scope()
        #: The prefix-replay engine (None under ``reuse='inline'``).  Its
        #: root checkpoint is the machine state at reader construction.
        self.replay: Optional[ReplayEngine] = (
            None if reuse == "inline" else ReplayEngine(
                machine, reuse=reuse, store=store, store_scope=store_scope))
        self._prefix_key = None

    def _default_store_scope(self):
        """Content identity of this reader's profiled-victim prefix.

        The prefix state is a deterministic function of (machine profile,
        machine state at construction, victim program + entry + mode,
        thread), so those are exactly the scope components.  A victim
        with a ``setup`` hook has behaviour outside the program digest
        (it provisions registers/memory), so no sound default exists --
        the caller must name the victim via an explicit ``store_scope``.
        """
        if self.victim.setup is not None:
            raise ValueError(
                "cannot derive a content-address scope for a victim with "
                "a setup hook; pass an explicit store_scope identifying it")
        from repro.service.store import machine_digest, profile_digest, \
            program_digest
        return (
            "read_phr",
            profile_digest(self.machine.config),
            machine_digest(self.machine),
            program_digest(self.victim.program),
            self.victim.entry,
            self.victim.mode,
            self.thread,
        )

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """PHR capacity of the attached machine."""
        return self.machine.config.phr_capacity

    def _call_victim_after_clear(self) -> None:
        """``Clear_PHR`` followed by a victim call.

        Because the victim is deterministic and always entered with a
        zeroed PHR here, its post-call PHR is a constant; after one real
        invocation we install the cached value directly.  The victim's PHT
        updates are irrelevant to this primitive (only the final PHR state
        feeds the test branch), so this is behaviour-preserving -- see
        ``tests/test_read_phr.py`` for the equivalence check.
        """
        phr = self.machine.phr(self.thread)
        phr.clear()
        if self._victim_phr_cache is None:
            self.victim.invoke(thread=self.thread)
            self._victim_phr_cache = phr.value
        else:
            phr.set_value(self._victim_phr_cache)

    def _not_taken_value(self, guess: int, known: List[int]) -> int:
        """The ``Write_PHR`` argument ``[X, P_{i-1}, ..., P_0, 0...]``."""
        capacity = self.capacity
        value = guess << (2 * (capacity - 1))
        for back, doublet in enumerate(reversed(known), start=2):
            value |= doublet << (2 * (capacity - back))
        return value

    def _profile_victim(self) -> None:
        """The replayed prefix: ``Clear_PHR`` + one real victim run.

        Declared as the engine's prefix builder, so under
        ``reuse='checkpoint'`` it executes exactly once, and under
        ``reuse='none'`` it re-executes (victim and all) for every
        guess -- the paper's naive per-trial protocol.
        """
        phr = self.machine.phr(self.thread)
        phr.clear()
        self.victim.invoke(thread=self.thread)
        self._victim_phr_cache = phr.value

    def _ensure_prefix(self):
        if self._prefix_key is None:
            self._prefix_key = self.replay.checkpoint(
                ("read_phr", "victim-profiled"), self._profile_victim)
        return self._prefix_key

    def _measure_guess(self, index: int, guess: int,
                       known: List[int]) -> float:
        """Misprediction rate of the test branch for one guess of P_index."""
        if self.replay is None:
            return self._measure_loop(index, guess, known)
        key = self._ensure_prefix()
        return self.replay.evaluate(
            key, lambda: self._measure_loop(index, guess, known))

    def _measure_loop(self, index: int, guess: int,
                      known: List[int]) -> float:
        machine = self.machine
        phr = machine.phr(self.thread)
        if self.replay is not None and self._victim_phr_cache is None:
            # Prefix served from the shared store: the builder never ran
            # here, but the restored state *is* the post-victim state, so
            # the PHR constant the taken path installs is simply the
            # current register value.
            self._victim_phr_cache = phr.value
        rng = self.rng.fork(index * 4 + guess)
        not_taken_value = self._not_taken_value(guess, known)
        shift_amount = self.capacity - 1 - index
        mispredicted = 0

        for iteration in range(self.warmup + self.measure):
            self.iterations += 1
            train_taken = rng.coin()
            phr.clear()
            machine.observe_conditional(self.train_pc, self.train_target,
                                        train_taken, thread=self.thread)
            if train_taken:
                self._call_victim_after_clear()
                phr.shift(shift_amount)
            else:
                phr.set_value(not_taken_value)
            test_missed = machine.observe_conditional(
                self.test_pc, self.test_target, train_taken,
                thread=self.thread,
            )
            if iteration >= self.warmup and test_missed:
                mispredicted += 1
        return mispredicted / self.measure

    def read_doublet(self, index: int, known: List[int]) -> tuple:
        """Recover doublet ``index`` given the already-known lower doublets.

        Returns ``(doublet, misprediction_rate)``.
        """
        if len(known) != index:
            raise ValueError(
                f"need exactly the {index} lower doublets, got {len(known)}"
            )
        rates: Dict[int, float] = {}
        for guess in range(4):
            rates[guess] = self._measure_guess(index, guess, known)
        best = max(rates, key=lambda g: rates[g])
        return best, rates[best]

    def read(self, count: Optional[int] = None) -> PhrReadResult:
        """Recover the ``count`` (default: all) low doublets of the PHR."""
        if count is None:
            count = self.capacity
        if not 0 < count <= self.capacity:
            raise DoubletCountError(
                f"requested {count} doublets, but the primitive can deliver "
                f"between 1 and {self.capacity} (the PHR capacity)")
        known: List[int] = []
        confidence: List[float] = []
        for index in range(count):
            doublet, rate = self.read_doublet(index, known)
            known.append(doublet)
            confidence.append(rate)
        return PhrReadResult(doublets=known, confidence=confidence,
                             iterations=self.iterations)
