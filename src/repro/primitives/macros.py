"""PHR manipulation macros: ``Shift_PHR``, ``Clear_PHR``, ``Write_PHR``.

Section 4 of the paper builds everything on three observations:

* a taken branch whose address bits B15..B0 and target bits T5..T0 are all
  zero has a zero footprint, so it *only* shifts the PHR left one doublet
  (``Shift_PHR``),
* shifting ``capacity`` times zeroes the register (``Clear_PHR``), and
* a branch with zeroed addresses except target bits T0/T1 writes an
  arbitrary value into doublet 0, so 194 such branches write the whole
  register (``Write_PHR``).

Each macro exists in three equivalent forms:

1. **emit** -- real branch instructions appended to a
   :class:`~repro.isa.builder.ProgramBuilder` (what attacker binaries
   contain),
2. **apply** -- the same branch commits driven directly into a
   :class:`~repro.cpu.machine.Machine` (one ``record_taken_branch`` per
   macro branch; used by attack loops to skip interpretation overhead),
3. **transform** -- the closed-form PHR state change.

``tests/test_macros.py`` asserts the three forms produce bit-identical
PHR values; the macros consist exclusively of unconditional direct
branches, which never touch the PHTs, so PHR equality is full
microarchitectural equivalence for the structures the attacks observe.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.isa.builder import ProgramBuilder, unique_label
from repro.isa.instructions import Nop

#: Size of one macro branch "unit" in the address space: each macro branch
#: sits at a 64KiB boundary so its address bits B15..B0 are zero.
REGION = 0x10000


def _doublet_to_target_offset(doublet: int) -> int:
    """Target-address low bits encoding ``doublet`` into footprint doublet 0.

    Footprint doublet 0 is ``(B3^T0, B4^T1)``; with a 64KiB-aligned branch
    the B bits vanish, leaving ``(T0, T1)``.  Doublet value ``d`` therefore
    needs target bit0 = d>>1 and bit1 = d&1.
    """
    if not 0 <= doublet <= 0b11:
        raise ValueError(f"doublet value out of range: {doublet}")
    return (doublet >> 1) | ((doublet & 0b1) << 1)


class PhrMacros:
    """Factory for the PHR macros against one machine configuration."""

    def __init__(self, machine: Machine, region_base: int = 0x7F00_0000):
        if region_base % REGION:
            raise ValueError("macro region base must be 64KiB aligned")
        self.machine = machine
        self.region_base = region_base

    @property
    def capacity(self) -> int:
        """PHR capacity (doublets) of the attached machine."""
        return self.machine.config.phr_capacity

    # ------------------------------------------------------------------
    # closed-form transforms
    # ------------------------------------------------------------------

    @staticmethod
    def shift_transform(phr: PathHistoryRegister, amount: int) -> None:
        """``Shift_PHR[amount]`` as a state transform."""
        phr.shift(amount)

    @staticmethod
    def clear_transform(phr: PathHistoryRegister) -> None:
        """``Clear_PHR`` as a state transform."""
        phr.clear()

    @staticmethod
    def write_transform(phr: PathHistoryRegister, value: int) -> None:
        """``Write_PHR(value)`` as a state transform."""
        phr.set_value(value)

    # ------------------------------------------------------------------
    # machine-apply forms (one branch commit per macro branch)
    # ------------------------------------------------------------------

    def _shift_branches(self, amount: int) -> List[Tuple[int, int]]:
        """The ``(pc, target)`` pairs of ``Shift_PHR[amount]``."""
        return [
            (self.region_base + unit * REGION,
             self.region_base + (unit + 1) * REGION)
            for unit in range(amount)
        ]

    def _write_branches(self, doublets: Sequence[int]) -> List[Tuple[int, int]]:
        """The ``(pc, target)`` pairs of a write of ``doublets``.

        ``doublets`` is most-significant first (the paper's
        ``Write_PHR(P193, ..., P0)`` argument order): the first branch's
        doublet ends up shifted into the most significant position.
        """
        branches = []
        for unit, doublet in enumerate(doublets):
            pc = self.region_base + unit * REGION
            target = (self.region_base + (unit + 1) * REGION
                      - 64 + _doublet_to_target_offset(doublet))
            branches.append((pc, target))
        return branches

    def apply_shift(self, amount: int, thread: int = 0) -> None:
        """Commit ``Shift_PHR[amount]`` through the machine."""
        for pc, target in self._shift_branches(amount):
            self.machine.record_taken_branch(pc, target, thread=thread)

    def apply_clear(self, thread: int = 0) -> None:
        """Commit ``Clear_PHR`` (== ``Shift_PHR[capacity]``)."""
        self.apply_shift(self.capacity, thread=thread)

    def apply_write(self, value: int, thread: int = 0) -> None:
        """Commit ``Write_PHR(value)`` through the machine.

        ``value`` is the raw ``2*capacity``-bit PHR value to install.
        """
        phr = PathHistoryRegister(self.capacity, value)
        doublets_msb_first = list(reversed(phr.doublets()))
        for pc, target in self._write_branches(doublets_msb_first):
            self.machine.record_taken_branch(pc, target, thread=thread)

    # ------------------------------------------------------------------
    # instruction-emitting forms
    # ------------------------------------------------------------------

    def emit_shift(self, builder: ProgramBuilder, amount: int) -> None:
        """Emit ``Shift_PHR[amount]`` as real instructions.

        Layout: ``amount`` chained unconditional jumps, each at a 64KiB
        boundary targeting the next boundary, so every footprint is zero.
        Ends with the builder positioned at the boundary after the last
        unit.
        """
        if amount == 0:
            return
        for pc, target in self._shift_branches(amount):
            builder.at(pc)
            label = unique_label("shift")
            builder.jmp(label)
            # Define the landing label at the next boundary; the jump
            # instruction itself occupies [pc, pc+4), the rest of the
            # region is unreachable padding that the assembler skips.
            builder.at(target)
            builder.label(label)
        builder.nop()  # give the final label an instruction to land on

    def emit_write(self, builder: ProgramBuilder, value: int) -> None:
        """Emit ``Write_PHR(value)`` as real instructions.

        Each unit jumps from its 64KiB boundary to a landing pad placed 64
        bytes before the *next* boundary, offset by the doublet encoding in
        target bits T0/T1; the pad falls through nops into the next unit,
        adding no extra taken branches.
        """
        phr = PathHistoryRegister(self.capacity, value)
        doublets_msb_first = list(reversed(phr.doublets()))
        for pc, target in self._write_branches(doublets_msb_first):
            builder.at(pc)
            label = unique_label("write")
            builder.jmp(label)
            builder.at(target)
            builder.label(label)
            offset = target & 0x3F
            pad_bytes = 64 - offset
            # Fill [target, next boundary) with nops; first nop absorbs the
            # doublet-encoding misalignment.
            first_size = pad_bytes % 4 or 4
            builder.raw(Nop(size=first_size))
            for _ in range((pad_bytes - first_size) // 4):
                builder.raw(Nop())
        builder.nop()

    def emit_clear(self, builder: ProgramBuilder) -> None:
        """Emit ``Clear_PHR`` as real instructions."""
        self.emit_shift(builder, self.capacity)


def branch_pairs_footprint_free(pairs: Iterable[Tuple[int, int]]) -> bool:
    """Whether every ``(pc, target)`` pair has a zero footprint.

    A helper for tests and for the Section 10 PHR-flush mitigation, which
    needs 194 unconditional *footprint-free* branches.
    """
    from repro.cpu.footprint import branch_footprint

    return all(branch_footprint(pc, target) == 0 for pc, target in pairs)
