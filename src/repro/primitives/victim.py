"""Victim invocation handles.

The paper's threat model (Section 3) lets the attacker invoke the victim
repeatedly with fixed (but unknown) inputs, and assumes deterministic
branching.  :class:`VictimHandle` wraps that contract: it runs a victim
program on the shared machine and -- because the run is deterministic --
can replay the victim's recorded effect cheaply on subsequent calls.

Two invocation modes exist:

* ``execute`` -- interpret the victim program end to end (every call);
* ``replay`` -- after one profiling execution, subsequent calls replay the
  recorded branch commits (same CBP updates, same PHR updates) without
  re-interpreting data instructions.

Replay performs the *identical* sequence of predictor interactions, so
the two modes are microarchitecturally equivalent for everything the
attacks measure; ``tests/test_victim_handle.py`` asserts this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cpu.machine import Machine, MachineRunResult
from repro.isa.interpreter import BranchKind, CpuState
from repro.isa.memory import Memory
from repro.isa.program import Program


@dataclass(frozen=True)
class RecordedBranch:
    """One committed branch from the profiling run."""

    pc: int
    target: int
    conditional: bool
    taken: bool


class VictimHandle:
    """Invokable victim with deterministic control flow.

    ``setup`` (optional) prepares registers/memory before each execution;
    it must be deterministic for the handle's replay cache to be valid.
    """

    def __init__(
        self,
        machine: Machine,
        program: Program,
        setup: Optional[Callable[[CpuState, Memory], None]] = None,
        entry: Optional[int] = None,
        mode: str = "replay",
        max_instructions: int = 5_000_000,
    ):
        if mode not in ("replay", "execute"):
            raise ValueError(f"unknown victim mode {mode!r}")
        self.machine = machine
        self.program = program
        self.setup = setup
        self.entry = entry
        self.mode = mode
        self.max_instructions = max_instructions
        self._recorded: Optional[List[RecordedBranch]] = None
        self._last_result: Optional[MachineRunResult] = None

    # ------------------------------------------------------------------

    def _execute(self, thread: int) -> MachineRunResult:
        state = CpuState()
        memory = Memory()
        if self.setup is not None:
            self.setup(state, memory)
        result = self.machine.run(
            self.program,
            thread=thread,
            state=state,
            memory=memory,
            entry=self.entry,
            max_instructions=self.max_instructions,
        )
        self._last_result = result
        self._recorded = [
            RecordedBranch(
                pc=record.pc,
                target=record.target,
                conditional=record.kind is BranchKind.CONDITIONAL,
                taken=record.taken,
            )
            for record in result.trace
        ]
        return result

    def invoke(self, thread: int = 0) -> None:
        """Run the victim once on ``thread`` (execute or replay)."""
        if self.mode == "execute" or self._recorded is None:
            self._execute(thread)
            return
        machine = self.machine
        for branch in self._recorded:
            if branch.conditional:
                machine.observe_conditional(branch.pc, branch.target,
                                            branch.taken, thread=thread)
            elif branch.taken:
                machine.record_taken_branch(branch.pc, branch.target,
                                            thread=thread)

    # ------------------------------------------------------------------
    # profiling accessors (oracle-side ground truth for experiments)
    # ------------------------------------------------------------------

    def profile(self, thread: int = 0) -> List[RecordedBranch]:
        """The victim's committed branch sequence (profiling run)."""
        if self._recorded is None:
            self._execute(thread)
        assert self._recorded is not None
        return list(self._recorded)

    def taken_branches(self, thread: int = 0) -> List[Tuple[int, int]]:
        """Ordered ``(pc, target)`` pairs of the victim's taken branches."""
        return [
            (branch.pc, branch.target)
            for branch in self.profile(thread)
            if branch.taken
        ]

    def last_result(self) -> Optional[MachineRunResult]:
        """The most recent full-execution result, if any."""
        return self._last_result
