"""``Extended_Read_PHR`` -- Attack Primitive 4 (paper Section 5, Figure 5).

``Read_PHR`` only reaches the last ``capacity`` (194) taken branches.  The
extension recovers *older* history by exploiting the PHTs: a victim branch
``b_m`` was trained using the PHR *before* it executed, and that PHR
reaches 194 branches further back than the post-victim PHR.  Reversing
the update of ``b_m`` leaves exactly one unknown doublet (the one shifted
out); brute-forcing its four values and testing for a PHT *collision*
against an aliased attacker branch reveals it.  Iterating backward, the
entire control-flow history is recovered, one doublet per taken branch.

Collision test (Figure 5): per round, the victim is re-invoked (re-training
its entry toward its actual outcome) and the attacker executes a not-taken
branch at the same low PC bits with the candidate PHR installed.  When the
candidate matches the true pre-branch PHR the two share one PHT entry that
ping-pongs, so the attacker branch mispredicts persistently; otherwise the
attacker's own longest-table entry converges and mispredictions stop.

Branch identities: reversing an update needs the ``(pc, target)`` of each
taken branch.  In the paper these come from the Pathfinder tool's CFG
matching, interleaved with the doublet recovery; this module accepts the
branch sequence as an input (either from Pathfinder or, in controlled
experiments, from ground truth) and focuses on the microarchitectural
recovery.  Runs of *unconditional* branches are handled exactly as the
paper describes: they cannot be probed (they never touch the PHTs), so the
unknown doublets accumulate until the next conditional branch, where all
``4^gap`` combinations are tested; more than ``capacity`` consecutive
unconditional taken branches make recovery impossible (the paper's stated
limitation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.primitives.errors import HistoryLengthError
from repro.replay import ReplayEngine
from repro.utils.bits import mask

#: Accepted prefix-reuse policies for the extended reader.
#:
#: * ``inline`` -- probes accumulate machine state (the pre-replay
#:   default when ``reset_between_probes`` is off);
#: * ``checkpoint`` -- every candidate probe is evaluated from the
#:   baseline checkpoint through :class:`~repro.replay.ReplayEngine`
#:   (order-independent probes), and each round refreshes only the
#:   probed PHT entry -- the amortized shortcut;
#: * ``none`` -- the naive twin: probes still start from the baseline
#:   state, but every round re-commits the victim's *entire* taken
#:   branch sequence (each conditional at its true pre-branch PHR),
#:   i.e. the full Figure 5 victim re-invocation that ``checkpoint``
#:   amortizes away.  Only the probed entry differs between candidate
#:   measurements, so the recovered doublets are pinned equal.
REUSE_MODES = ("inline", "checkpoint", "none")


@dataclass(frozen=True)
class TakenBranch:
    """One taken branch of the victim's dynamic history, oldest first."""

    pc: int
    target: int
    conditional: bool


@dataclass
class ExtendedReadResult:
    """Result of an extended PHR read."""

    #: Doublets of the *unbounded* path history after the victim ran,
    #: least significant (most recent) first; length == number of taken
    #: branches.  The low ``capacity`` doublets equal the physical PHR.
    doublets: List[int]
    #: Whether every doublet beyond the physical PHR was recovered.
    complete: bool
    #: Total attacker probe branches executed.
    probes: int
    #: Largest run of consecutive unconditional branches bridged.
    max_gap: int
    #: Topmost doublets not probe-recovered but derived from the branch
    #: identities of the history's oldest (entry-anchored) branches --
    #: these precede the victim's first conditional branch, so no PHT
    #: entry reaches them; Pathfinder pins the branches themselves from
    #: the already-recovered window, which determines the doublets.
    derived_tail: int = 0


class ExtendedPhrReader:
    """Implements ``Extended_Read_PHR`` against a shared machine."""

    def __init__(
        self,
        machine: Machine,
        thread: int = 0,
        rounds: int = 8,
        collision_threshold: float = 0.5,
        max_gap: int = 8,
        pc_alias_offset: int = 0x1000_0000,
        victim_context=None,
        attacker_context=None,
        reset_between_probes: bool = False,
        reuse: Optional[str] = None,
    ):
        if reuse is None:
            reuse = "checkpoint" if reset_between_probes else "inline"
        if reuse not in REUSE_MODES:
            raise ValueError(
                f"unknown reuse mode {reuse!r}; expected one of {REUSE_MODES}")
        self.machine = machine
        self.thread = thread
        self.rounds = rounds
        self.collision_threshold = collision_threshold
        self.max_gap = max_gap
        self.pc_alias_offset = pc_alias_offset
        self.probes = 0
        self.reuse = reuse
        #: Lazily constructed at the first probe, so its root checkpoint
        #: captures the machine right after the victim ran (the state
        #: every candidate measurement must start from).
        self.replay: Optional[ReplayEngine] = None
        #: (pc, pre-branch PHR) of every victim conditional, set by
        #: :meth:`read`; the ``reuse='none'`` twin replays it as the full
        #: per-round victim refresh.
        self._refresh_sequence = None
        #: When True, every candidate probe restores the machine to a
        #: checkpoint taken at the first probe
        #: (:meth:`repro.cpu.machine.Machine.snapshot`).  Long reads churn
        #: the PHTs across tens of thousands of probes; the reset pins
        #: each measurement to the identical machine state, making probes
        #: order-independent (the trial-harness determinism contract).
        self.reset_between_probes = reset_between_probes
        self._probe_baseline = None
        #: Optional zero-argument hooks invoked before victim refreshes /
        #: attacker probes -- they model the domain switch surrounding
        #: each victim invocation (used by the secure-predictor
        #: experiments, where the CBP is context-keyed).
        self.victim_context = victim_context or (lambda: None)
        self.attacker_context = attacker_context or (lambda: None)

    @property
    def capacity(self) -> int:
        """PHR capacity (doublets) of the attached machine."""
        return self.machine.config.phr_capacity

    # ------------------------------------------------------------------

    def _true_pre_phr_values(self, branches: Sequence[TakenBranch]) -> List[int]:
        """Physical PHR value before each branch, for the victim refresh.

        This models the victim re-invocation of each probe round: re-running
        the victim re-trains each branch's PHT entry at its pre-branch PHR.
        Only the probed branch's entry influences the attacker's
        measurement, so the refresh touches just that entry.
        """
        phr = PathHistoryRegister(self.capacity)
        values = []
        for branch in branches:
            values.append(phr.value)
            phr.update(branch.pc, branch.target)
        return values

    def _probe_mispredictions(self, victim_pc: int, victim_pre_phr: int,
                              candidate_phr: int) -> int:
        """Misprediction count of the aliased probe for one candidate.

        Protocol (a prime+refresh+probe variant of Figure 5):

        1. *prime* -- the attacker saturates the candidate coordinate's
           entry to strongly not-taken.  This puts every candidate in a
           known state regardless of history: victims with periodic
           control flow revisit (PC, PHR) coordinates, so leftovers from
           earlier probes (or from the victim itself) must not bias the
           measurement.
        2. *refresh+probe rounds* -- each round re-invokes the victim
           twice (re-training its branch's true entry toward taken) and
           then runs one aliased not-taken probe.  When the candidate
           matches the true pre-branch PHR, the shared counter climbs two
           steps per round against the probe's one, crosses the threshold
           and mispredicts persistently; when it does not match, the
           primed entry never sees a taken update and the probe stays
           silent.
        """
        if self.reuse != "inline":
            if self.replay is None:
                self.replay = ReplayEngine(
                    self.machine,
                    reuse="none" if self.reuse == "none" else "checkpoint")
            # Every candidate measurement starts from the engine root (the
            # machine as it stood at the first probe), so probes are
            # order-independent.
            return self.replay.evaluate(
                ReplayEngine.ROOT,
                lambda: self._probe_once(victim_pc, victim_pre_phr,
                                         candidate_phr))
        if self.reset_between_probes:
            # Legacy combination (explicit reuse='inline' with resets):
            # the pre-engine ad-hoc snapshot path.
            if self._probe_baseline is None:
                self._probe_baseline = self.machine.snapshot()
            else:
                self.machine.restore(self._probe_baseline)
        return self._probe_once(victim_pc, victim_pre_phr, candidate_phr)

    def _probe_once(self, victim_pc: int, victim_pre_phr: int,
                    candidate_phr: int) -> int:
        """One prime + refresh/probe measurement on the live machine."""
        machine = self.machine
        phr = machine.phr(self.thread)
        attacker_pc = victim_pc + self.pc_alias_offset
        attacker_target = attacker_pc + 0x40
        victim_phr = PathHistoryRegister(self.capacity, victim_pre_phr)

        # Prime: force an allocation cascade to the longest table, then
        # saturate not-taken (same mechanics as Read_PHT's prime phase).
        self.attacker_context()
        for _ in range(len(machine.cbp.tables)):
            phr.set_value(candidate_phr)
            prediction = machine.cbp.predict(attacker_pc, phr)
            machine.observe_conditional(attacker_pc, attacker_target,
                                        not prediction.taken,
                                        thread=self.thread)
        for _ in range(1 << machine.config.counter_bits):
            phr.set_value(candidate_phr)
            machine.observe_conditional(attacker_pc, attacker_target, False,
                                        thread=self.thread)

        mispredictions = 0
        full_refresh = (self.reuse == "none"
                        and self._refresh_sequence is not None)
        for _ in range(self.rounds):
            self.probes += 1
            # Two victim calls per probe: the asymmetry lets a shared
            # counter escape the primed saturation.
            self.victim_context()
            if full_refresh:
                # Naive twin: each victim call re-trains *every*
                # conditional at its true pre-branch PHR.  Only the
                # probed entry feeds the aliased probe, which is what
                # the 'checkpoint' shortcut exploits.
                for _call in range(2):
                    for pc, pre_phr in self._refresh_sequence:
                        machine.cbp.observe(pc, pre_phr, True)
            else:
                machine.cbp.observe(victim_pc, victim_phr, True)
                machine.cbp.observe(victim_pc, victim_phr, True)
            self.attacker_context()
            phr.set_value(candidate_phr)
            if machine.observe_conditional(attacker_pc, attacker_target,
                                           False, thread=self.thread):
                mispredictions += 1
        return mispredictions

    def _probe_collision(self, victim_pc: int, victim_pre_phr: int,
                         candidate_phr: int) -> bool:
        """Absolute-threshold collision check (used by tests/diagnostics)."""
        count = self._probe_mispredictions(victim_pc, victim_pre_phr,
                                           candidate_phr)
        return count / self.rounds >= self.collision_threshold

    # ------------------------------------------------------------------

    def read(
        self,
        branches: Sequence[TakenBranch],
        observed_phr_doublets: Optional[Sequence[int]] = None,
    ) -> ExtendedReadResult:
        """Recover the full history of ``branches`` (oldest first).

        ``observed_phr_doublets`` is the output of ``Read_PHR`` after the
        victim ran; if omitted it is computed from the branch sequence
        (equivalent, since Read_PHR is exact -- its own evaluation shows a
        100% recovery rate).

        The reconstruction follows Figure 5 literally: starting from the
        observed PHR it repeatedly *reverses* the last not-yet-reversed
        taken branch's update.  Reversal exposes every doublet of the
        pre-branch PHR except the most significant one; that one is
        brute-forced via the PHT collision probe when the branch is
        conditional, or carried as a pending unknown across unconditional
        branches (which never touch the PHTs) until the next conditional
        branch resolves the whole pending group at once.
        """
        from repro.cpu.footprint import branch_footprint

        branches = list(branches)
        count = len(branches)
        capacity = self.capacity

        if observed_phr_doublets is None:
            phr = PathHistoryRegister(capacity)
            for branch in branches:
                phr.update(branch.pc, branch.target)
            observed_phr_doublets = phr.doublets()
        else:
            # Read_PHR output covers min(count, capacity) doublets; a
            # shorter observation cannot seed the reconstruction and a
            # longer one cannot have come from the physical PHR.  Raising
            # beats the old silent truncation: a clipped window walks the
            # reversal from the wrong anchor value.
            expected = min(count, capacity)
            if not expected <= len(observed_phr_doublets) <= capacity:
                raise HistoryLengthError(
                    f"observed_phr_doublets has {len(observed_phr_doublets)} "
                    f"doublets; expected between {expected} and {capacity} "
                    f"for {count} taken branches (capacity {capacity})")

        known = list(observed_phr_doublets)  # doublets of E_N, LSB first
        if count <= capacity:
            return ExtendedReadResult(doublets=known[:count], complete=True,
                                      probes=self.probes, max_gap=0)

        pre_phr_values = self._true_pre_phr_values(branches)
        if self.reuse == "none":
            self._refresh_sequence = [
                (branch.pc, PathHistoryRegister(capacity, pre_phr_values[i]))
                for i, branch in enumerate(branches) if branch.conditional
            ]
        #: Running reconstruction of the PHR *before* branch m, walking m
        #: backward; unknown top doublets are held as zero and counted in
        #: ``pending``.
        current = PathHistoryRegister.from_doublets(
            observed_phr_doublets, capacity=capacity
        ).value
        pending = 0
        largest_gap = 0
        complete = True

        # Step at (1-indexed) branch m recovers unbounded-history doublet
        # capacity + count - m; stop once index count-1 is known.
        for m in range(count, capacity, -1):
            branch = branches[m - 1]
            footprint = branch_footprint(branch.pc, branch.target)
            reversed_low = ((current ^ footprint) >> 2) & mask(2 * capacity)

            if not branch.conditional:
                pending += 1
                largest_gap = max(largest_gap, pending)
                if pending > self.max_gap:
                    complete = False
                    break
                current = reversed_low & mask(2 * (capacity - pending))
                continue

            unknown_count = pending + 1
            known_low = reversed_low & mask(2 * (capacity - unknown_count))
            recovered = self._recover_unknown_doublets(
                branch.pc,
                pre_phr_values[m - 1],
                known_low,
                unknown_count,
            )
            if recovered is None:
                complete = False
                break
            top_value = 0
            for offset, doublet in enumerate(recovered):
                top_value |= doublet << (2 * offset)
            current = known_low | (top_value << (2 * (capacity - unknown_count)))
            known.extend(recovered)
            pending = 0
            if len(known) >= count:
                break

        derived_tail = 0
        if complete and len(known) < count:
            # The remaining top doublets precede the last backward-probeable
            # conditional branch; every branch contributing to them executed
            # right after the attacker's Clear_PHR, so once Pathfinder
            # anchors the path at the victim entry their identities -- and
            # hence these doublets -- are fixed.  Derive them by replay.
            replay = PathHistoryRegister(count)
            for branch in branches:
                replay.update(branch.pc, branch.target)
            replay_doublets = replay.doublets()
            derived_tail = count - len(known)
            known.extend(replay_doublets[len(known):count])

        if len(known) < count:
            complete = False
        return ExtendedReadResult(doublets=known[:count], complete=complete,
                                  probes=self.probes, max_gap=largest_gap,
                                  derived_tail=derived_tail)

    def _recover_unknown_doublets(
        self,
        victim_pc: int,
        victim_pre_phr: int,
        known_low: int,
        unknown_count: int,
    ) -> Optional[List[int]]:
        """Brute-force the top ``unknown_count`` doublets of a pre-PHR.

        ``known_low`` holds the known low ``capacity - unknown_count``
        doublets.  Returns the recovered doublets lowest-position first,
        or None if no candidate stood out.

        The decision is *comparative*, matching the paper's protocol of
        measuring the misprediction rate for all four values and keeping
        the outlier: under heavy PHT churn (tens of thousands of probes
        in the libjpeg attack) absolute rates drift, but the colliding
        candidate remains the clear maximum.
        """
        capacity = self.capacity
        top_shift = 2 * (capacity - unknown_count)

        counts = []
        for combo in itertools.product(range(4), repeat=unknown_count):
            # combo[0] is the *lowest* unknown doublet (just above the
            # known part); combo[-1] the most significant.
            top_value = 0
            for offset, doublet in enumerate(combo):
                top_value |= doublet << (2 * offset)
            candidate = (known_low
                         | (top_value << top_shift)) & mask(2 * capacity)
            count = self._probe_mispredictions(victim_pc, victim_pre_phr,
                                               candidate)
            counts.append((count, combo))
            # The climb-out-of-prime dynamics cap the collision signature
            # at rounds - 2 mispredictions; a candidate reaching the cap
            # is the collision (early exit for the common single-doublet
            # case).
            if count >= self.rounds - 2 and unknown_count == 1:
                return list(combo)
        counts.sort(key=lambda pair: pair[0], reverse=True)
        best_count, best_combo = counts[0]
        runner_up = counts[1][0] if len(counts) > 1 else -1
        if best_count > runner_up:
            return list(best_combo)
        return None
