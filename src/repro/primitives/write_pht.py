"""``Write_PHT`` -- Attack Primitive 2 (paper Section 4.3).

With ``Write_PHR`` able to install any PHR value, the attacker can steer a
branch execution at any ``(PC, PHR)`` coordinate, reaching an arbitrary
entry of any PHT (or the base predictor).  Executing the branch with the
chosen outcome eight times saturates the 3-bit counter, planting a strong
taken / not-taken prediction that a *victim* branch colliding on the same
coordinate will consume -- the poisoning half of the Section 9 Spectre
attack.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.cpu.machine import Machine
from repro.cpu.phr import PathHistoryRegister
from repro.replay import ReplayEngine
from repro.utils.rng import DeterministicRng


class PhtWriter:
    """Implements ``Write_PHT(PC, PHR, value)``.

    The attacker's branch lives at a different address than the victim's,
    but with identical low 16 bits -- enough to alias in every PHT (index
    uses one PC bit, tags use PC[15:0]) and in the base predictor
    (PC[12:0]).  ``pc_alias_offset`` relocates the attacker branch; the
    default adds a high bit far above the 16 tag-relevant bits.
    """

    def __init__(
        self,
        machine: Machine,
        thread: int = 0,
        repetitions: int = 8,
        pc_alias_offset: int = 0x1000_0000,
        rebias_base: bool = True,
        rng: DeterministicRng = None,  # type: ignore[assignment]
    ):
        if repetitions < 1:
            raise ValueError("need at least one training repetition")
        if pc_alias_offset & 0xFFFF:
            raise ValueError("alias offset must preserve PC[15:0]")
        self.machine = machine
        self.thread = thread
        self.repetitions = repetitions
        self.pc_alias_offset = pc_alias_offset
        self.rebias_base = rebias_base
        self.rng = rng if rng is not None else DeterministicRng(0xB1A5)
        #: Fixed re-bias PHR working set: reusing the same values across
        #: writes keeps the attacker's PHT footprint bounded (repeated
        #: attacks would otherwise slowly evict unrelated victim entries).
        width = 2 * machine.config.phr_capacity
        self._rebias_values = [self.rng.value_bits(width)
                               for _ in range(self.repetitions)]

    def write(self, pc: int, phr_value: int, taken: bool) -> None:
        """Set the PHT entry reached by ``(pc, phr_value)`` to ``taken``.

        Each repetition re-installs the PHR (a ``Write_PHR``) and commits
        one branch at the aliasing attacker address with the desired
        outcome; eight repetitions saturate the 3-bit counter.

        By default a *re-bias* pass follows: the same branch executes with
        the opposite outcome under fresh random PHR values.  The main
        writes drag the PC-indexed base predictor toward the planted
        direction, which would spill mispredictions onto every other
        dynamic instance of the victim branch (defeating the paper's
        single-instance precision); the re-bias pass restores the base
        predictor's original direction while leaving the planted tagged
        entry -- selected by the exact (PC, PHR) coordinate -- untouched.
        """
        machine = self.machine
        phr = machine.phr(self.thread)
        attacker_pc = pc + self.pc_alias_offset
        attacker_target = attacker_pc + 0x40
        # Force an allocation cascade so the *longest* table owns the
        # coordinate (otherwise, when the base predictor already agrees
        # with the planted direction, no tagged entry would be created and
        # the plant would not stick to this PHR specifically).
        for _ in range(len(machine.cbp.tables)):
            phr.set_value(phr_value)
            prediction = machine.cbp.predict(attacker_pc, phr)
            machine.observe_conditional(attacker_pc, attacker_target,
                                        not prediction.taken,
                                        thread=self.thread)
        for _ in range(self.repetitions):
            phr.set_value(phr_value)
            machine.observe_conditional(attacker_pc, attacker_target, taken,
                                        thread=self.thread)
        if self.rebias_base:
            for rebias_value in self._rebias_values:
                phr.set_value(rebias_value)
                machine.observe_conditional(attacker_pc, attacker_target,
                                            not taken, thread=self.thread)

    def write_for_branch(self, pc: int, phr: PathHistoryRegister,
                         taken: bool) -> None:
        """Convenience overload taking a PHR object."""
        self.write(pc, phr.value, taken)

    def write_checkpointed(
        self,
        replay: ReplayEngine,
        pc: int,
        phr_value: int,
        taken: bool,
        parent: Optional[Hashable] = None,
    ) -> Hashable:
        """A :meth:`write` declared as a replay-engine checkpoint.

        The first write from state ``parent`` runs the full ~22-branch
        training protocol and snapshots the poisoned machine; repeated
        writes of the same coordinate from the same parent restore it
        instead (one diff-based restore per re-poison).  Returns the
        checkpoint key for :meth:`ReplayEngine.evaluate`.
        """
        key = ("write_pht", pc, phr_value, taken,
               ReplayEngine.ROOT if parent is None else parent)
        return replay.checkpoint(
            key, lambda: self.write(pc, phr_value, taken),
            parent=ReplayEngine.ROOT if parent is None else parent)
