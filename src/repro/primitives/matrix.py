"""Cross-architecture read/write-primitive measurements.

The paper's primitives are built for the Intel CBP; this module distils
each into a *family-generic* measurement that any registered predictor
backend (:mod:`repro.cpu.model`) can run, so the sec4/sec6 benchmark
arms can emit one result matrix across architectures:

* :func:`measure_read_primitive` -- the Section 4 read channel reduced
  to its essence: how well does the predictor *disambiguate branch
  history*?  A victim branch's direction is a function of which of
  ``paths`` history preludes ran before it; a predictor that keys its
  tables on history learns every path (accuracy -> 1.0), a
  history-blind bimodal is pinned at the path-mix base rate.  The
  trained-vs-floor contrast is exactly what makes the PHR readable on
  the paper's machines.
* :func:`measure_write_primitive` -- the Section 6 write channel
  (``Write_PHT``: plant a prediction at a chosen (PC, history)
  coordinate): bias the branch not-taken over random histories, plant
  *taken* at one chosen history value, then check (a) the plant reads
  back (``planted_rate``) and (b) it did not spill into other history
  values at the same PC (``specificity``).  Tagged history tables give
  high specificity directly; the tournament earns it differently -- its
  chooser learns to trust the history-indexed gshare component during
  planting (gshare's fresh counters cross the taken threshold before
  the biased local does, winning the disagreements), so off-history
  probes land on cold gshare entries and stay not-taken.  Same
  measured outcome, different microarchitectural mechanism -- exactly
  the contrast the matrix exists to record.

:func:`measure_read_primitive_batch` is the vectorized twin of the read
measurement: N independent seeded sweeps run in lockstep through
:class:`repro.batch.BatchMachine` (any registered batch backend --
see :mod:`repro.batch.backends`), with per-replica results pinned
bit-identical to N scalar calls.  The write channel drives
``cbp.update``/``cbp.predict`` directly at chosen history coordinates,
which has no batch surface, so it stays scalar.

Every measurement is deterministic (seeded
:class:`~repro.utils.rng.DeterministicRng`) and drives machines only
through the family-agnostic surface (``observe_conditional``,
``clear_phr``, ``model.build_history``, ``cbp.predict/update``), so one
implementation serves all backends identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.utils.rng import DeterministicRng

#: Code addresses of the prelude branches and the victim branch.
_PRELUDE_BASE = 0x40_0000
_VICTIM_PC = 0x41_0040


@dataclass(frozen=True)
class ReadPrimitiveResult:
    """History-disambiguation accuracy of one backend."""

    model_id: str
    paths: int
    train_rounds: int
    test_rounds: int
    #: Fraction of test-phase victim commits predicted correctly.
    accuracy: float
    #: Base rate a history-blind predictor is pinned at (taken mix).
    blind_floor: float

    @property
    def contrast(self) -> float:
        """Accuracy above the history-blind floor (the read signal)."""
        return self.accuracy - self.blind_floor

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model_id,
            "paths": self.paths,
            "accuracy": round(self.accuracy, 4),
            "blind_floor": round(self.blind_floor, 4),
            "contrast": round(self.contrast, 4),
        }


@dataclass(frozen=True)
class WritePrimitiveResult:
    """Plant-then-predict behaviour of one backend."""

    model_id: str
    plants: int
    probes_per_plant: int
    #: Fraction of plants whose (PC, history) prediction read back taken.
    planted_rate: float
    #: Fraction of off-history probes that stayed not-taken.
    specificity: float

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model_id,
            "plants": self.plants,
            "planted_rate": round(self.planted_rate, 4),
            "specificity": round(self.specificity, 4),
        }


def _path_prelude(path: int, length: int) -> Tuple[Tuple[int, int, bool], ...]:
    """The conditional-branch prelude encoding ``path``.

    Branch ``k`` of the prelude is taken iff bit ``k`` of ``path`` is
    set.  Every family's history sees the difference: the Intel PHR
    records the taken subset's footprints, the M1 register records both
    directions, the tournament GHR records the direction bits.
    """
    return tuple(
        (_PRELUDE_BASE + 0x40 * k, _PRELUDE_BASE + 0x40 * k + 0x20,
         bool((path >> k) & 1))
        for k in range(length)
    )


def measure_read_primitive(
    config: MachineConfig,
    paths: int = 4,
    prelude_length: int = 4,
    train_rounds: int = 24,
    test_rounds: int = 8,
    seed: int = 0x5EC4,
) -> ReadPrimitiveResult:
    """Train and score the history-disambiguation channel on ``config``.

    One *round* visits every path once (in a seeded shuffled order so no
    family can exploit round structure): clear the thread history, run
    the path's prelude, then commit the victim branch whose direction is
    ``path & 1``.  The first ``train_rounds`` rounds train; accuracy is
    scored over the last ``test_rounds``.
    """
    if paths < 2 or not paths & 1 == 0:
        raise ValueError(f"paths must be even and >= 2, got {paths}")
    if (1 << prelude_length) < paths:
        raise ValueError("prelude too short to encode every path")
    machine = Machine(config)
    rng = DeterministicRng(seed)
    preludes = [_path_prelude(path, prelude_length) for path in range(paths)]
    outcomes = [bool(path & 1) for path in range(paths)]

    correct = 0
    tested = 0
    for round_index in range(train_rounds + test_rounds):
        order = list(range(paths))
        for position in range(paths - 1, 0, -1):
            other = rng.integer(0, position)
            order[position], order[other] = order[other], order[position]
        for path in order:
            machine.clear_phr()
            for pc, target, taken in preludes[path]:
                machine.observe_conditional(pc, target, taken)
            mispredicted = machine.observe_conditional(
                _VICTIM_PC, _VICTIM_PC + 0x80, outcomes[path])
            if round_index >= train_rounds:
                tested += 1
                correct += not mispredicted
    blind_floor = max(sum(outcomes), paths - sum(outcomes)) / paths
    return ReadPrimitiveResult(
        model_id=machine.model.model_id,
        paths=paths,
        train_rounds=train_rounds,
        test_rounds=test_rounds,
        accuracy=correct / tested,
        blind_floor=blind_floor,
    )


def measure_read_primitive_batch(
    config: MachineConfig,
    replicas: int,
    paths: int = 4,
    prelude_length: int = 4,
    train_rounds: int = 24,
    test_rounds: int = 8,
    seed: int = 0x5EC4,
):
    """``replicas`` independent read-primitive sweeps in one batch.

    Replica ``r`` reproduces ``measure_read_primitive(config,
    seed=seed + r)`` bit for bit -- each replica draws its own shuffled
    path orders from its own seeded rng, and the batch commits every
    replica's current branch in lockstep through the vectorized engine.
    Returns the per-replica :class:`ReadPrimitiveResult` list; the
    matrix benchmark pins the outputs identical to the scalar sweep and
    gates the wall-clock win per family.
    """
    if paths < 2 or not paths & 1 == 0:
        raise ValueError(f"paths must be even and >= 2, got {paths}")
    if (1 << prelude_length) < paths:
        raise ValueError("prelude too short to encode every path")
    import numpy as np

    from repro.batch import BatchMachine

    batch = BatchMachine(replicas, config)
    rngs = [DeterministicRng(seed + r) for r in range(replicas)]
    preludes = [_path_prelude(path, prelude_length) for path in range(paths)]
    outcomes = [bool(path & 1) for path in range(paths)]
    #: taken_bits[k][path] -- direction of prelude branch k on `path`.
    taken_bits = np.array(
        [[bool((path >> k) & 1) for path in range(paths)]
         for k in range(prelude_length)],
        dtype=bool)
    outcome_arr = np.array(outcomes, dtype=bool)

    correct = np.zeros(replicas, dtype=np.int64)
    tested = 0
    current = np.zeros(replicas, dtype=np.int64)
    for round_index in range(train_rounds + test_rounds):
        orders = []
        for rng in rngs:
            order = list(range(paths))
            for position in range(paths - 1, 0, -1):
                other = rng.integer(0, position)
                order[position], order[other] = order[other], order[position]
            orders.append(order)
        for position in range(paths):
            for r in range(replicas):
                current[r] = orders[r][position]
            batch.clear_phr()
            for k in range(prelude_length):
                pc = _PRELUDE_BASE + 0x40 * k
                batch.observe_conditional(pc, pc + 0x20,
                                          taken_bits[k][current])
            mispredicted = batch.observe_conditional(
                _VICTIM_PC, _VICTIM_PC + 0x80, outcome_arr[current])
            if round_index >= train_rounds:
                tested += 1
                correct += ~mispredicted
    blind_floor = max(sum(outcomes), paths - sum(outcomes)) / paths
    model_id = config.predictor_model
    return [
        ReadPrimitiveResult(
            model_id=model_id,
            paths=paths,
            train_rounds=train_rounds,
            test_rounds=test_rounds,
            accuracy=int(correct[r]) / tested,
            blind_floor=blind_floor,
        )
        for r in range(replicas)
    ]


def measure_write_primitive(
    config: MachineConfig,
    plants: int = 16,
    bias_rounds: int = 24,
    train_updates: int = 6,
    probes_per_plant: int = 16,
    seed: int = 0x5EC6,
) -> WritePrimitiveResult:
    """Plant predictions at chosen (PC, history) coordinates on ``config``.

    Per plant: train the branch not-taken over ``bias_rounds`` random
    history values, re-train *taken* at one chosen history value with
    ``train_updates`` updates, then read the prediction back at the
    planted coordinate and at ``probes_per_plant`` other random history
    values of the same PC.
    """
    machine = Machine(config)
    history = machine.model.build_history()
    width = history.bits
    rng = DeterministicRng(seed)

    planted_hits = 0
    clean_probes = 0
    total_probes = 0
    for plant in range(plants):
        pc = 0x42_0000 + 0x940 * plant
        for _ in range(bias_rounds):
            history.set_value(rng.value_bits(width))
            machine.cbp.update(pc, history, False)
        planted_value = rng.value_bits(width)
        history.set_value(planted_value)
        for _ in range(train_updates):
            machine.cbp.update(pc, history, True)
        planted_hits += machine.cbp.predict(pc, history).taken
        for _ in range(probes_per_plant):
            probe_value = rng.value_bits(width)
            if probe_value == planted_value:
                continue
            history.set_value(probe_value)
            total_probes += 1
            clean_probes += not machine.cbp.predict(pc, history).taken
    return WritePrimitiveResult(
        model_id=machine.model.model_id,
        plants=plants,
        probes_per_plant=probes_per_plant,
        planted_rate=planted_hits / plants,
        specificity=clean_probes / total_probes if total_probes else 0.0,
    )
