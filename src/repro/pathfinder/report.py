"""Reporting for recovered paths (the Figure 6 style output).

Pathfinder's output "not only identifies the path that generates the
observed PHR but also provides information about the victim's execution,
including (1) the branches taken or not within the victim's code, (2) the
number of iterations within each loop, and (3) the PHR values at each
basic block" -- this module computes all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.pathfinder.cfg import ControlFlowGraph
from repro.pathfinder.search import RecoveredPath


@dataclass
class PathReport:
    """Derived facts about one recovered path."""

    path: RecoveredPath
    #: Visit count per block start address.
    visit_counts: Dict[int, int]
    #: (pc, taken) per dynamic conditional branch, in order.
    branch_outcomes: List[Tuple[int, bool]]
    #: PHR value on entry to each dynamic block (forward replay).
    phr_at_block: List[Tuple[int, int]]

    def loop_iterations(self, block_start: int) -> int:
        """Times ``block_start`` executed (the Figure 6 iteration count)."""
        return self.visit_counts.get(block_start, 0)


def build_report(cfg: ControlFlowGraph, path: RecoveredPath,
                 phr_capacity: int = 194) -> PathReport:
    """Replay ``path`` forward, collecting the report data."""
    phr = PathHistoryRegister(phr_capacity)
    phr_at_block: List[Tuple[int, int]] = [(path.blocks[0], phr.value)]
    for edge in path.edges:
        if edge.kind.updates_phr:
            phr.update(edge.branch_pc, edge.destination)
        phr_at_block.append((edge.destination, phr.value))
    return PathReport(
        path=path,
        visit_counts=path.block_visit_counts(),
        branch_outcomes=path.branch_outcomes,
        phr_at_block=phr_at_block,
    )


def render_cfg(cfg: ControlFlowGraph, path: RecoveredPath) -> str:
    """ASCII rendering of the CFG with the executed path highlighted.

    Executed edges are marked ``*`` and annotated with their traversal
    count, mirroring Figure 6's red edges and the iteration counter on the
    AES loop's back edge.
    """
    traversals: Dict[Tuple[int, int, str], int] = {}
    for edge in path.edges:
        key = (edge.source, edge.destination, edge.kind.value)
        traversals[key] = traversals.get(key, 0) + 1
    visit_counts = path.block_visit_counts()

    block_names = {
        start: f"BB {number}"
        for number, start in enumerate(sorted(cfg.blocks), start=1)
    }
    lines: List[str] = []
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        visits = visit_counts.get(start, 0)
        marker = f"  executed x{visits}" if visits else "  (not executed)"
        role = ""
        if start == cfg.entry:
            role = "  [entry]"
        elif block.is_exit or not cfg.edges_out.get(start):
            role = "  [exit]"
        lines.append(f"{block_names[start]}  {start:#x}..{block.end:#x}"
                     f"{role}{marker}")
        out_edges = list(cfg.edges_out.get(start, []))
        for edge in out_edges:
            key = (edge.source, edge.destination, edge.kind.value)
            count = traversals.get(key, 0)
            mark = f" * x{count}" if count else ""
            lines.append(
                f"    --{edge.kind.value}--> "
                f"{block_names.get(edge.destination, hex(edge.destination))}"
                f"{mark}"
            )
    return "\n".join(lines)


def dynamic_edge_counts(path: RecoveredPath) -> Dict[str, int]:
    """Totals per edge kind (taken / not-taken / call / ret / ...)."""
    counts: Dict[str, int] = {}
    for edge in path.edges:
        counts[edge.kind.value] = counts.get(edge.kind.value, 0) + 1
    return counts
