"""Pathfinder (paper Section 6): from a PHR value to a control-flow path.

The PHR is a heavily folded function of branch and target addresses, not a
readable trace.  Pathfinder turns a recovered (possibly extended) path
history back into the victim's runtime control flow:

* :mod:`repro.pathfinder.cfg` builds a control flow graph from a victim
  binary (standing in for the paper's use of angr),
* :mod:`repro.pathfinder.search` runs the backward path search -- from the
  exit block toward the entry, pruning predecessors whose footprint cannot
  have produced the observed lowest doublet, exactly as Section 6
  describes,
* :mod:`repro.pathfinder.report` renders the Figure 6 style annotated CFG
  and extracts per-branch outcomes, loop trip counts, and per-block PHR
  values.
"""

from repro.pathfinder.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Edge,
    EdgeKind,
    cached_cfg,
)
from repro.pathfinder.search import (
    PathSearch,
    RecoveredPath,
    cached_path_search,
)
from repro.pathfinder.report import PathReport, render_cfg
from repro.pathfinder.export import to_dot

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Edge",
    "EdgeKind",
    "PathReport",
    "PathSearch",
    "RecoveredPath",
    "cached_cfg",
    "cached_path_search",
    "render_cfg",
    "to_dot",
]
