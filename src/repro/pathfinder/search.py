"""The Pathfinder backward path search (paper Section 6).

Given a CFG and an observed path history, the search starts from the exit
block and explores predecessors in reverse execution order.  Every edge
that folds a footprint into the PHR must match the current lowest doublet
(which is produced exclusively by the most recent taken branch); matching
edges are reversed (``value = (value ^ footprint) >> 2``) and the walk
continues until the entry block explains the entire history.

Two matching modes:

* ``exact`` -- the observed history covers the victim's whole execution
  (the Extended Read PHR output).  The reversal is then information-
  preserving, and an accepted path reproduces the history bit for bit.
* ``window`` -- the observed history is the physical PHR, covering only
  the last ``len(doublets)`` taken branches.  A path suffix is accepted
  the moment it explains the full window.
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.pathfinder.cfg import ControlFlowGraph, Edge, EdgeKind
from repro.utils.bits import mask


@dataclass
class RecoveredPath:
    """One execution path consistent with the observed history."""

    #: Edges in forward execution order (entry .. exit).
    edges: List[Edge]
    #: Block start addresses in forward execution order, including entry.
    blocks: List[int]
    #: Whether this path explains history back to the function entry.
    reaches_entry: bool

    @property
    def branch_outcomes(self) -> List[Tuple[int, bool]]:
        """Per-conditional-branch (pc, taken) outcomes, in order."""
        outcomes = []
        for edge in self.edges:
            if edge.kind is EdgeKind.TAKEN:
                outcomes.append((edge.branch_pc, True))
            elif edge.kind is EdgeKind.NOT_TAKEN:
                outcomes.append((edge.branch_pc, False))
        return outcomes

    @property
    def taken_branches(self) -> List[Tuple[int, int]]:
        """Ordered (pc, target) of every PHR-updating branch."""
        return [
            (edge.branch_pc, edge.destination)
            for edge in self.edges
            if edge.kind.updates_phr
        ]

    def block_visit_counts(self) -> Dict[int, int]:
        """How many times each block executed (loop trip counts)."""
        return Counter(self.blocks)


@dataclass
class _State:
    """One frontier node of the backward search (immutable chain)."""

    point: int  # block start whose execution onwards is explained
    value: int  # remaining (reversed) history value
    matched: int  # taken branches consumed so far
    call_stack: Tuple[Tuple[int, int], ...]  # (callee_entry, continuation)
    parent: Optional["_State"] = None
    via: Optional[Edge] = None


@dataclass
class PathSearch:
    """Backward search over one CFG."""

    cfg: ControlFlowGraph
    mode: str = "exact"
    max_states: int = 2_000_000
    max_paths: int = 16
    #: Dead-state transposition table.  A residual state is fully
    #: described by ``(block, residual value, matched depth, call
    #: stack)``; once a subtree rooted at such a state has been fully
    #: explored without yielding a verified path, every later arrival at
    #: the same state is pruned.  Window-mode searches over loopy CFGs
    #: otherwise re-explore identical residual states exponentially
    #: often (equal-footprint diamonds all fold to one value).  ``False``
    #: keeps the naive exhaustive walk for benchmark comparison.
    memoize: bool = True
    #: Explored states in the last run (diagnostics).
    explored: int = field(default=0, init=False)
    #: States skipped via the dead-state memo in the last run.
    pruned: int = field(default=0, init=False)
    #: Doublet-indexed predecessor lookup, keyed to ``cfg.version``.
    _in_index: Optional[Dict] = field(default=None, init=False, repr=False)
    _passthrough: Optional[Dict] = field(default=None, init=False, repr=False)
    _ret_index: Optional[Dict] = field(default=None, init=False, repr=False)
    _index_version: int = field(default=-1, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "window"):
            raise ValueError(f"unknown search mode {self.mode!r}")

    # ------------------------------------------------------------------

    def _ensure_index(self) -> None:
        """(Re)build the per-CFG edge indexes if the CFG changed.

        ``edges_in`` scans touched every in-edge per visited state; the
        index buckets PHR-updating edges by their lowest footprint
        doublet (the only value doublet 0 can match), so each visit
        walks exactly the candidate edges.  Dynamic RET edges -- whose
        footprints the old walk recomputed per visit -- are prebuilt
        once per continuation.  ``cfg.version`` invalidates everything
        when an edge is inserted after the first search.
        """
        version = getattr(self.cfg, "version", 0)
        if self._in_index is not None and self._index_version == version:
            return
        in_index: Dict[int, Dict[int, List[Edge]]] = {}
        passthrough: Dict[int, List[Edge]] = {}
        for destination, edges in self.cfg.edges_in.items():
            for edge in edges:
                if edge.kind.updates_phr:
                    assert edge.footprint is not None
                    in_index.setdefault(destination, {}).setdefault(
                        edge.footprint & 0b11, []).append(edge)
                else:
                    passthrough.setdefault(destination, []).append(edge)
        ret_index: Dict[int, List[Tuple[int, Edge]]] = {}
        for continuation, callees in self.cfg.call_continuations.items():
            entries = ret_index.setdefault(continuation, [])
            for callee_entry in callees:
                for ret_block in self.cfg.ret_blocks():
                    entries.append((callee_entry,
                                    self._ret_edge(ret_block, continuation)))
        self._in_index = in_index
        self._passthrough = passthrough
        self._ret_index = ret_index
        self._index_version = version

    def search(
        self,
        doublets: Sequence[int],
        exit_block: Optional[int] = None,
    ) -> List[RecoveredPath]:
        """Find all paths consistent with ``doublets`` (LSB first)."""
        width = len(doublets)
        if width == 0:
            raise ValueError("cannot search an empty history")
        observed = PathHistoryRegister.from_doublets(doublets, capacity=width)
        value_mask = mask(2 * width)

        if exit_block is not None:
            exits = [self.cfg.block_at(exit_block)]
        else:
            exits = self.cfg.exit_blocks()
        if not exits:
            raise ValueError("CFG has no exit blocks")

        self._ensure_index()
        paths: List[RecoveredPath] = []
        self.explored = 0
        self.pruned = 0
        entry = self.cfg.entry
        #: Per-search transposition table of dead residual states.
        dead = set() if self.memoize else None
        #: Once a limit trips, frames unwind without dead-marking: a
        #: partially explored subtree may still hide a verified path, so
        #: memoizing it as dead would be unsound on a rerun... and within
        #: this run nothing further is explored anyway.
        truncated = False
        #: DFS frames: [state, memo key, successor iterator, found flag].
        frames: List[list] = []

        def enter(state: _State) -> Optional[bool]:
            """Visit ``state``; True = verified leaf, False = barren,
            None = frame pushed (successors pending)."""
            nonlocal truncated
            self.explored += 1
            if self.explored > self.max_states:
                truncated = True
                return False
            if self._accepts(state, entry, width):
                candidate = self._materialize(state)
                if self._verify(candidate, observed.value, width):
                    paths.append(candidate)
                    return True
                # Accepted states have no useful predecessors (window
                # mode: matched == width; exact mode: at the entry).
                return False
            key = (state.point, state.value, state.matched, state.call_stack)
            if dead is not None and key in dead:
                self.pruned += 1
                return False
            # Reversed, so iteration order matches the old LIFO pop order.
            successors = list(self._predecessors(state, value_mask, width))
            frames.append([state, key, iter(reversed(successors)), False])
            return None

        # Old stack order: exits pushed in address order, popped last-first.
        for root in reversed([
            _State(point=block.start, value=observed.value, matched=0,
                   call_stack=())
            for block in exits
        ]):
            if truncated or len(paths) >= self.max_paths:
                break
            enter(root)
            while frames:
                if len(paths) >= self.max_paths:
                    truncated = True
                frame = frames[-1]
                if truncated:
                    frames.pop()
                    continue
                try:
                    successor = next(frame[2])
                except StopIteration:
                    frames.pop()
                    if dead is not None and not frame[3]:
                        dead.add(frame[1])
                    if frames and frame[3]:
                        frames[-1][3] = True
                    continue
                if enter(successor):
                    frame[3] = True

        return paths

    # ------------------------------------------------------------------

    def _accepts(self, state: _State, entry: int, width: int) -> bool:
        if self.mode == "window":
            return state.matched == width and not state.call_stack
        # Exact mode: the victim entered with a cleared PHR, so a path that
        # reaches the entry block may legitimately contain fewer taken
        # branches than the history width (the remaining doublets are the
        # zeros the clear left behind); forward verification settles it.
        return state.point == entry and not state.call_stack

    def _verify(self, path: RecoveredPath, observed_value: int,
                width: int) -> bool:
        """Forward-replay the candidate and compare histories.

        Backward reversal is slightly lossy (the register's top doublet is
        lost per forward update, exactly as in hardware), so the per-step
        doublet-0 pruning is necessary but not sufficient; replaying the
        candidate forward over a ``width``-doublet register and comparing
        against the observed value gives an exact check.  The physical PHR
        is a function of only the last ``width`` taken branches, so the
        replay is well defined in both modes.
        """
        phr = PathHistoryRegister(width)
        for pc, target in path.taken_branches:
            phr.update(pc, target)
        return phr.value == observed_value

    def _predecessors(self, state: _State, value_mask: int, width: int):
        # PHR-updating static edges: only those whose lowest footprint
        # doublet equals the state's doublet 0 can step, and only while
        # the window still has unmatched doublets -- the index hands us
        # exactly that bucket.  Bucket order preserves edges_in order, so
        # the yielded sequence matches the pre-index walk.
        if state.matched < width:
            updating = self._in_index.get(state.point)
            if updating is not None:
                for edge in updating.get(state.value & 0b11, ()):
                    successor = self._step(state, edge, value_mask, width)
                    if successor is not None:
                        yield successor
        # Non-updating edges (not-taken, fallthrough) always qualify.
        for edge in self._passthrough.get(state.point, ()):
            successor = self._step(state, edge, value_mask, width)
            if successor is not None:
                yield successor
        # Dynamic return edges: if this point is a call continuation, the
        # predecessor may be any ret block of the recorded callee.
        if state.matched < width:
            low = state.value & 0b11
            for callee_entry, edge in self._ret_index.get(state.point, ()):
                if (edge.footprint & 0b11) != low:
                    continue
                successor = self._step(state, edge, value_mask, width,
                                       push=(callee_entry, state.point))
                if successor is not None:
                    yield successor

    def _ret_edge(self, ret_block, continuation: int) -> Edge:
        from repro.cpu.footprint import branch_footprint

        ret_pc = ret_block.instruction_addresses[-1]
        return Edge(EdgeKind.RET, ret_block.start, continuation,
                    branch_pc=ret_pc,
                    footprint=branch_footprint(ret_pc, continuation))

    def _step(self, state: _State, edge: Edge, value_mask: int, width: int,
              push: Optional[Tuple[int, int]] = None) -> Optional[_State]:
        call_stack = state.call_stack
        if push is not None:
            call_stack = call_stack + (push,)

        if edge.kind is EdgeKind.CALL:
            # Backward through a call edge: we are at the callee entry and
            # must match the pending (callee, continuation) pair.
            if not call_stack:
                return None
            callee_entry, continuation = call_stack[-1]
            if edge.destination != callee_entry:
                return None
            if edge.branch_pc + 4 != continuation:
                return None
            call_stack = call_stack[:-1]

        if edge.kind.updates_phr:
            if state.matched >= width:
                return None
            assert edge.footprint is not None
            if (edge.footprint & 0b11) != (state.value & 0b11):
                return None
            value = ((state.value ^ edge.footprint) >> 2) & value_mask
            matched = state.matched + 1
        else:
            value = state.value
            matched = state.matched

        return _State(point=edge.source, value=value, matched=matched,
                      call_stack=call_stack, parent=state, via=edge)

    def _materialize(self, state: _State) -> RecoveredPath:
        edges: List[Edge] = []
        cursor: Optional[_State] = state
        while cursor is not None and cursor.via is not None:
            edges.append(cursor.via)
            cursor = cursor.parent
        # The chain was built backward-from-exit, so it is already in
        # forward execution order.
        blocks = [edges[0].source] if edges else [state.point]
        for edge in edges:
            blocks.append(edge.destination)
        reaches_entry = blocks[0] == self.cfg.entry
        return RecoveredPath(edges=edges, blocks=blocks,
                             reaches_entry=reaches_entry)


#: ControlFlowGraph -> {(mode, max_states, max_paths): PathSearch}.  A
#: search object is stateless across runs apart from the ``explored``
#: diagnostic, so attack drivers can share one per configuration instead
#: of rebuilding it (with its CFG) for every trial.
_SEARCH_CACHE: "weakref.WeakKeyDictionary[ControlFlowGraph, Dict[tuple, PathSearch]]" \
    = weakref.WeakKeyDictionary()


def cached_path_search(
    cfg: ControlFlowGraph,
    mode: str = "exact",
    max_states: int = 2_000_000,
    max_paths: int = 16,
) -> PathSearch:
    """The memoized :class:`PathSearch` for ``cfg`` and the given knobs.

    Pair with :func:`repro.pathfinder.cfg.cached_cfg` so repeated trials
    against one victim reuse both the graph and the search object.
    """
    per_cfg = _SEARCH_CACHE.get(cfg)
    if per_cfg is None:
        per_cfg = _SEARCH_CACHE[cfg] = {}
    key = (mode, max_states, max_paths)
    search = per_cfg.get(key)
    if search is None:
        search = per_cfg[key] = PathSearch(
            cfg, mode=mode, max_states=max_states, max_paths=max_paths)
    return search
