"""The Pathfinder backward path search (paper Section 6).

Given a CFG and an observed path history, the search starts from the exit
block and explores predecessors in reverse execution order.  Every edge
that folds a footprint into the PHR must match the current lowest doublet
(which is produced exclusively by the most recent taken branch); matching
edges are reversed (``value = (value ^ footprint) >> 2``) and the walk
continues until the entry block explains the entire history.

Two matching modes:

* ``exact`` -- the observed history covers the victim's whole execution
  (the Extended Read PHR output).  The reversal is then information-
  preserving, and an accepted path reproduces the history bit for bit.
* ``window`` -- the observed history is the physical PHR, covering only
  the last ``len(doublets)`` taken branches.  A path suffix is accepted
  the moment it explains the full window.
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.pathfinder.cfg import ControlFlowGraph, Edge, EdgeKind
from repro.utils.bits import mask


@dataclass
class RecoveredPath:
    """One execution path consistent with the observed history."""

    #: Edges in forward execution order (entry .. exit).
    edges: List[Edge]
    #: Block start addresses in forward execution order, including entry.
    blocks: List[int]
    #: Whether this path explains history back to the function entry.
    reaches_entry: bool

    @property
    def branch_outcomes(self) -> List[Tuple[int, bool]]:
        """Per-conditional-branch (pc, taken) outcomes, in order."""
        outcomes = []
        for edge in self.edges:
            if edge.kind is EdgeKind.TAKEN:
                outcomes.append((edge.branch_pc, True))
            elif edge.kind is EdgeKind.NOT_TAKEN:
                outcomes.append((edge.branch_pc, False))
        return outcomes

    @property
    def taken_branches(self) -> List[Tuple[int, int]]:
        """Ordered (pc, target) of every PHR-updating branch."""
        return [
            (edge.branch_pc, edge.destination)
            for edge in self.edges
            if edge.kind.updates_phr
        ]

    def block_visit_counts(self) -> Dict[int, int]:
        """How many times each block executed (loop trip counts)."""
        return Counter(self.blocks)


@dataclass
class _State:
    """One frontier node of the backward search (immutable chain)."""

    point: int  # block start whose execution onwards is explained
    value: int  # remaining (reversed) history value
    matched: int  # taken branches consumed so far
    call_stack: Tuple[Tuple[int, int], ...]  # (callee_entry, continuation)
    parent: Optional["_State"] = None
    via: Optional[Edge] = None


@dataclass
class PathSearch:
    """Backward search over one CFG."""

    cfg: ControlFlowGraph
    mode: str = "exact"
    max_states: int = 2_000_000
    max_paths: int = 16
    #: Explored states in the last run (diagnostics).
    explored: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "window"):
            raise ValueError(f"unknown search mode {self.mode!r}")

    # ------------------------------------------------------------------

    def search(
        self,
        doublets: Sequence[int],
        exit_block: Optional[int] = None,
    ) -> List[RecoveredPath]:
        """Find all paths consistent with ``doublets`` (LSB first)."""
        width = len(doublets)
        if width == 0:
            raise ValueError("cannot search an empty history")
        observed = PathHistoryRegister.from_doublets(doublets, capacity=width)
        value_mask = mask(2 * width)

        if exit_block is not None:
            exits = [self.cfg.block_at(exit_block)]
        else:
            exits = self.cfg.exit_blocks()
        if not exits:
            raise ValueError("CFG has no exit blocks")

        paths: List[RecoveredPath] = []
        stack: List[_State] = [
            _State(point=block.start, value=observed.value, matched=0,
                   call_stack=())
            for block in exits
        ]
        self.explored = 0
        entry = self.cfg.entry

        while stack and len(paths) < self.max_paths:
            state = stack.pop()
            self.explored += 1
            if self.explored > self.max_states:
                break

            if self._accepts(state, entry, width):
                candidate = self._materialize(state)
                if self._verify(candidate, observed.value, width):
                    paths.append(candidate)
                # In window mode a state accepted at matched == width has
                # no useful predecessors; in exact mode acceptance already
                # required reaching the entry, same conclusion.
                continue

            for successor in self._predecessors(state, value_mask, width):
                stack.append(successor)

        return paths

    # ------------------------------------------------------------------

    def _accepts(self, state: _State, entry: int, width: int) -> bool:
        if self.mode == "window":
            return state.matched == width and not state.call_stack
        # Exact mode: the victim entered with a cleared PHR, so a path that
        # reaches the entry block may legitimately contain fewer taken
        # branches than the history width (the remaining doublets are the
        # zeros the clear left behind); forward verification settles it.
        return state.point == entry and not state.call_stack

    def _verify(self, path: RecoveredPath, observed_value: int,
                width: int) -> bool:
        """Forward-replay the candidate and compare histories.

        Backward reversal is slightly lossy (the register's top doublet is
        lost per forward update, exactly as in hardware), so the per-step
        doublet-0 pruning is necessary but not sufficient; replaying the
        candidate forward over a ``width``-doublet register and comparing
        against the observed value gives an exact check.  The physical PHR
        is a function of only the last ``width`` taken branches, so the
        replay is well defined in both modes.
        """
        phr = PathHistoryRegister(width)
        for pc, target in path.taken_branches:
            phr.update(pc, target)
        return phr.value == observed_value

    def _predecessors(self, state: _State, value_mask: int, width: int):
        cfg = self.cfg
        # Regular static edges into this block.
        for edge in cfg.edges_in.get(state.point, []):
            successor = self._step(state, edge, value_mask, width)
            if successor is not None:
                yield successor
        # Dynamic return edges: if this point is a call continuation, the
        # predecessor may be any ret block of the recorded callee.
        for callee_entry in cfg.call_continuations.get(state.point, []):
            for ret_block in cfg.ret_blocks():
                edge = self._ret_edge(ret_block, state.point)
                successor = self._step(state, edge, value_mask, width,
                                       push=(callee_entry, state.point))
                if successor is not None:
                    yield successor

    def _ret_edge(self, ret_block, continuation: int) -> Edge:
        from repro.cpu.footprint import branch_footprint

        ret_pc = ret_block.instruction_addresses[-1]
        return Edge(EdgeKind.RET, ret_block.start, continuation,
                    branch_pc=ret_pc,
                    footprint=branch_footprint(ret_pc, continuation))

    def _step(self, state: _State, edge: Edge, value_mask: int, width: int,
              push: Optional[Tuple[int, int]] = None) -> Optional[_State]:
        call_stack = state.call_stack
        if push is not None:
            call_stack = call_stack + (push,)

        if edge.kind is EdgeKind.CALL:
            # Backward through a call edge: we are at the callee entry and
            # must match the pending (callee, continuation) pair.
            if not call_stack:
                return None
            callee_entry, continuation = call_stack[-1]
            if edge.destination != callee_entry:
                return None
            if edge.branch_pc + 4 != continuation:
                return None
            call_stack = call_stack[:-1]

        if edge.kind.updates_phr:
            if state.matched >= width:
                return None
            assert edge.footprint is not None
            if (edge.footprint & 0b11) != (state.value & 0b11):
                return None
            value = ((state.value ^ edge.footprint) >> 2) & value_mask
            matched = state.matched + 1
        else:
            value = state.value
            matched = state.matched

        return _State(point=edge.source, value=value, matched=matched,
                      call_stack=call_stack, parent=state, via=edge)

    def _materialize(self, state: _State) -> RecoveredPath:
        edges: List[Edge] = []
        cursor: Optional[_State] = state
        while cursor is not None and cursor.via is not None:
            edges.append(cursor.via)
            cursor = cursor.parent
        # The chain was built backward-from-exit, so it is already in
        # forward execution order.
        blocks = [edges[0].source] if edges else [state.point]
        for edge in edges:
            blocks.append(edge.destination)
        reaches_entry = blocks[0] == self.cfg.entry
        return RecoveredPath(edges=edges, blocks=blocks,
                             reaches_entry=reaches_entry)


#: ControlFlowGraph -> {(mode, max_states, max_paths): PathSearch}.  A
#: search object is stateless across runs apart from the ``explored``
#: diagnostic, so attack drivers can share one per configuration instead
#: of rebuilding it (with its CFG) for every trial.
_SEARCH_CACHE: "weakref.WeakKeyDictionary[ControlFlowGraph, Dict[tuple, PathSearch]]" \
    = weakref.WeakKeyDictionary()


def cached_path_search(
    cfg: ControlFlowGraph,
    mode: str = "exact",
    max_states: int = 2_000_000,
    max_paths: int = 16,
) -> PathSearch:
    """The memoized :class:`PathSearch` for ``cfg`` and the given knobs.

    Pair with :func:`repro.pathfinder.cfg.cached_cfg` so repeated trials
    against one victim reuse both the graph and the search object.
    """
    per_cfg = _SEARCH_CACHE.get(cfg)
    if per_cfg is None:
        per_cfg = _SEARCH_CACHE[cfg] = {}
    key = (mode, max_states, max_paths)
    search = per_cfg.get(key)
    if search is None:
        search = per_cfg[key] = PathSearch(
            cfg, mode=mode, max_states=max_states, max_paths=max_paths)
    return search
