"""CFG export to Graphviz DOT (tooling around the Figure 6 output).

The paper renders Pathfinder's output as an annotated control flow graph
with executed edges in red.  This module produces the equivalent DOT
source, viewable with any Graphviz installation -- useful both for
attack analysis and for debugging victim layouts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.pathfinder.cfg import ControlFlowGraph, EdgeKind
from repro.pathfinder.search import RecoveredPath

#: Edge styling per kind.
_EDGE_STYLE = {
    EdgeKind.TAKEN: 'label="T"',
    EdgeKind.NOT_TAKEN: 'label="NT", style=dashed',
    EdgeKind.JUMP: 'label="jmp"',
    EdgeKind.CALL: 'label="call", style=bold',
    EdgeKind.RET: 'label="ret", style=bold',
    EdgeKind.FALLTHROUGH: 'style=dotted',
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(cfg: ControlFlowGraph,
           path: Optional[RecoveredPath] = None,
           title: str = "pathfinder") -> str:
    """Render ``cfg`` as DOT, highlighting ``path`` when given.

    Executed edges are drawn red with their traversal count (the Figure 6
    presentation); executed blocks carry their visit count.
    """
    traversals: Dict[Tuple[int, int, str], int] = {}
    visit_counts: Dict[int, int] = {}
    if path is not None:
        for edge in path.edges:
            key = (edge.source, edge.destination, edge.kind.value)
            traversals[key] = traversals.get(key, 0) + 1
        visit_counts = path.block_visit_counts()

    block_names = {
        start: f"BB{number}"
        for number, start in enumerate(sorted(cfg.blocks), start=1)
    }

    lines = [f'digraph "{_escape(title)}" {{',
             '  node [shape=box, fontname="monospace"];']
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        visits = visit_counts.get(start, 0)
        label = f"{block_names[start]}\\n{start:#x}..{block.end:#x}"
        attributes = [f'label="{label}"']
        if start == cfg.entry:
            attributes.append("peripheries=2")
        if visits:
            attributes.append('color=red')
            attributes.append(f'xlabel="x{visits}"')
        lines.append(f'  "{block_names[start]}" [{", ".join(attributes)}];')

    for start in sorted(cfg.blocks):
        for edge in cfg.edges_out.get(start, []):
            destination = block_names.get(edge.destination)
            if destination is None:
                continue
            style = [_EDGE_STYLE[edge.kind]]
            key = (edge.source, edge.destination, edge.kind.value)
            count = traversals.get(key, 0)
            if count:
                style.append("color=red")
                style.append("penwidth=2")
                style[0] = (f'label="{_dot_edge_label(edge.kind)}'
                            f' x{count}"')
            lines.append(f'  "{block_names[edge.source]}" -> '
                         f'"{destination}" [{", ".join(style)}];')
    lines.append("}")
    return "\n".join(lines)


def _dot_edge_label(kind: EdgeKind) -> str:
    return {
        EdgeKind.TAKEN: "T",
        EdgeKind.NOT_TAKEN: "NT",
        EdgeKind.JUMP: "jmp",
        EdgeKind.CALL: "call",
        EdgeKind.RET: "ret",
        EdgeKind.FALLTHROUGH: "",
    }[kind]
