"""Control-flow-graph construction over reproduction-ISA programs.

The paper uses the angr binary-analysis framework to lift victim binaries;
here the victim *is* a :class:`~repro.isa.program.Program`, so the CFG is
built directly.  Blocks are maximal straight-line instruction runs; edges
carry the branch address, target and footprint that the path search needs
to reverse PHR updates.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.footprint import branch_footprint
from repro.isa.instructions import (
    Call,
    CondBranch,
    Halt,
    Jump,
    JumpIndirect,
    Ret,
)
from repro.isa.program import Program


class EdgeKind(enum.Enum):
    """How control reaches the destination block."""

    #: Conditional branch, taken (updates the PHR).
    TAKEN = "taken"
    #: Conditional branch, not taken (no PHR effect).
    NOT_TAKEN = "not-taken"
    #: Unconditional jump (updates the PHR).
    JUMP = "jump"
    #: Call into a function (updates the PHR).
    CALL = "call"
    #: Return to a call continuation (updates the PHR).
    RET = "ret"
    #: Straight-line fall-through into a new block (no branch at all).
    FALLTHROUGH = "fallthrough"

    @property
    def updates_phr(self) -> bool:
        """Whether traversing this edge folds a footprint into the PHR."""
        return self in (EdgeKind.TAKEN, EdgeKind.JUMP, EdgeKind.CALL,
                        EdgeKind.RET)

    @property
    def is_conditional(self) -> bool:
        """Whether this edge comes from a conditional branch."""
        return self in (EdgeKind.TAKEN, EdgeKind.NOT_TAKEN)


@dataclass(frozen=True)
class Edge:
    """A CFG edge, annotated for PHR reversal."""

    kind: EdgeKind
    source: int  # source block start address
    destination: int  # destination block start address
    branch_pc: Optional[int] = None
    #: Footprint folded into the PHR when this edge executes (None when
    #: the edge does not update the PHR).
    footprint: Optional[int] = None


@dataclass
class BasicBlock:
    """A maximal single-entry straight-line region."""

    start: int
    end: int  # address one past the last instruction
    instruction_addresses: List[int] = field(default_factory=list)
    terminator: Optional[object] = None  # the final Instruction, if a branch
    is_exit: bool = False

    def __repr__(self) -> str:
        return f"BasicBlock({self.start:#x}..{self.end:#x})"


class ControlFlowGraph:
    """Blocks plus forward and reverse edge indexes."""

    def __init__(self, program: Program, entry: Optional[int] = None):
        self.program = program
        self.entry = program.entry if entry is None else entry
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges_out: Dict[int, List[Edge]] = {}
        self.edges_in: Dict[int, List[Edge]] = {}
        #: Return-continuation address -> list of callee entry addresses,
        #: used by the path search to pair rets with their call sites.
        self.call_continuations: Dict[int, List[int]] = {}
        #: Bumped by every post-build mutation (:meth:`add_edge`) so
        #: consumers holding derived indexes (:class:`PathSearch`'s
        #: doublet-indexed edge lookup) can detect staleness.
        self.version: int = 0
        self._build()

    # ------------------------------------------------------------------

    def _leaders(self) -> List[int]:
        program = self.program
        leaders = {self.entry}
        for address, instruction in program.items():
            if not instruction.is_branch:
                continue
            next_address = address + instruction.size
            if program.has_instruction_at(next_address):
                leaders.add(next_address)
            if isinstance(instruction, (CondBranch, Jump, Call)):
                leaders.add(program.address_of(instruction.target))
        return sorted(leader for leader in leaders
                      if program.has_instruction_at(leader))

    def _build(self) -> None:
        program = self.program
        leaders = self._leaders()
        leader_set = set(leaders)
        addresses = [address for address, _ in program.items()]

        # Carve blocks.
        current: Optional[BasicBlock] = None
        for address in addresses:
            instruction = program.instruction_at(address)
            if address in leader_set or current is None:
                current = BasicBlock(start=address, end=address)
                self.blocks[address] = current
            elif address != current.end:
                # Address gap (alignment padding): force a new block.
                current = BasicBlock(start=address, end=address)
                self.blocks[address] = current
            current.instruction_addresses.append(address)
            current.end = address + instruction.size
            if instruction.is_branch or isinstance(instruction, Halt):
                current.terminator = instruction
                if isinstance(instruction, (Halt, Ret)):
                    current.is_exit = isinstance(instruction, Halt)
                current = None

        # Wire edges.
        for block in self.blocks.values():
            self._wire_block(block)

        for block in self.blocks.values():
            if isinstance(block.terminator, Ret):
                block.is_exit = block.is_exit or not self.call_continuations

    def _wire_block(self, block: BasicBlock) -> None:
        program = self.program
        terminator = block.terminator
        last_address = block.instruction_addresses[-1]

        def add(edge: Edge) -> None:
            self.edges_out.setdefault(edge.source, []).append(edge)
            self.edges_in.setdefault(edge.destination, []).append(edge)

        if terminator is None:
            # Fell off into the next leader (or a padding gap).
            if program.has_instruction_at(block.end):
                add(Edge(EdgeKind.FALLTHROUGH, block.start, block.end))
            else:
                block.is_exit = True
            return

        if isinstance(terminator, CondBranch):
            target = program.address_of(terminator.target)
            fallthrough = last_address + terminator.size
            add(Edge(EdgeKind.TAKEN, block.start, target,
                     branch_pc=last_address,
                     footprint=branch_footprint(last_address, target)))
            if program.has_instruction_at(fallthrough):
                add(Edge(EdgeKind.NOT_TAKEN, block.start, fallthrough,
                         branch_pc=last_address))
        elif isinstance(terminator, Jump):
            target = program.address_of(terminator.target)
            add(Edge(EdgeKind.JUMP, block.start, target,
                     branch_pc=last_address,
                     footprint=branch_footprint(last_address, target)))
        elif isinstance(terminator, Call):
            target = program.address_of(terminator.target)
            continuation = last_address + terminator.size
            add(Edge(EdgeKind.CALL, block.start, target,
                     branch_pc=last_address,
                     footprint=branch_footprint(last_address, target)))
            self.call_continuations.setdefault(continuation, []).append(target)
        elif isinstance(terminator, JumpIndirect):
            # Indirect targets are unknown statically; the paper notes angr
            # has the same limitation and that it rarely matters.  The
            # search treats blocks reached only indirectly as unreachable.
            pass
        # Ret and Halt produce no static edges; rets are resolved
        # dynamically by the path search via call_continuations.

    # ------------------------------------------------------------------

    def add_edge(self, edge: Edge) -> None:
        """Insert a dynamically discovered edge after construction.

        The static builder cannot resolve indirect jump targets (the
        paper notes the same angr limitation); a driver that observes one
        at runtime can patch it in here.  Both endpoints must be existing
        block starts.  Bumps :attr:`version` so every memoized consumer
        (cached searches and their edge indexes) rebuilds instead of
        serving stale results.
        """
        if edge.source not in self.blocks:
            raise KeyError(f"no block starts at source {edge.source:#x}")
        if edge.destination not in self.blocks:
            raise KeyError(
                f"no block starts at destination {edge.destination:#x}")
        if edge.kind.updates_phr and edge.footprint is None:
            raise ValueError(f"{edge.kind.value} edge needs a footprint")
        self.edges_out.setdefault(edge.source, []).append(edge)
        self.edges_in.setdefault(edge.destination, []).append(edge)
        if edge.kind is EdgeKind.CALL:
            assert edge.branch_pc is not None
            continuation = edge.branch_pc + 4
            self.call_continuations.setdefault(
                continuation, []).append(edge.destination)
        self.version += 1

    def block_at(self, address: int) -> BasicBlock:
        """The block starting exactly at ``address``."""
        return self.blocks[address]

    def block_containing(self, address: int) -> BasicBlock:
        """The block whose address range contains ``address``."""
        for block in self.blocks.values():
            if block.start <= address < block.end:
                return block
        raise KeyError(f"no block contains {address:#x}")

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks that terminate the function/program."""
        exits = [b for b in self.blocks.values()
                 if b.is_exit or isinstance(b.terminator, Ret)]
        return sorted(exits, key=lambda b: b.start)

    def ret_blocks(self) -> List[BasicBlock]:
        """Blocks ending in a return."""
        return sorted(
            (b for b in self.blocks.values() if isinstance(b.terminator, Ret)),
            key=lambda b: b.start,
        )

    def conditional_branch_pcs(self) -> List[int]:
        """Addresses of all conditional branches in the CFG."""
        return sorted(
            edge.branch_pc
            for edges in self.edges_out.values()
            for edge in edges
            if edge.kind is EdgeKind.TAKEN
        )

    def block_count(self) -> int:
        """Number of basic blocks."""
        return len(self.blocks)

    def describe(self) -> str:
        """Multi-line textual summary (block list with edges)."""
        lines = []
        for start in sorted(self.blocks):
            block = self.blocks[start]
            lines.append(f"block {start:#x}..{block.end:#x}"
                         + ("  [exit]" if block.is_exit else ""))
            for edge in self.edges_out.get(start, []):
                lines.append(f"    -{edge.kind.value}-> {edge.destination:#x}")
        return "\n".join(lines)


def summarize_edge(edge: Edge) -> Tuple[str, int, int]:
    """Compact (kind, source, destination) tuple for logging/tests."""
    return (edge.kind.value, edge.source, edge.destination)


#: Program -> {entry: ControlFlowGraph}.  Programs are immutable after
#: assembly, so a CFG never goes stale; keying the outer map weakly lets
#: throwaway programs (tests build thousands) be collected with their CFGs.
_CFG_CACHE: "weakref.WeakKeyDictionary[Program, Dict[int, ControlFlowGraph]]" \
    = weakref.WeakKeyDictionary()


def cached_cfg(program: Program, entry: Optional[int] = None
               ) -> ControlFlowGraph:
    """The memoized :class:`ControlFlowGraph` of ``(program, entry)``.

    Attack drivers that rebuild the same victim's CFG per trial (image
    recovery runs one per block pattern, the AES attack one per leak)
    share a single instance instead.  Callers must treat the returned CFG
    as read-only.
    """
    resolved_entry = program.entry if entry is None else entry
    per_program = _CFG_CACHE.get(program)
    if per_program is None:
        per_program = _CFG_CACHE[program] = {}
    cfg = per_program.get(resolved_entry)
    if cfg is None:
        cfg = per_program[resolved_entry] = ControlFlowGraph(
            program, entry=resolved_entry)
    return cfg
