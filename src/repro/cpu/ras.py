"""Return address stack (Figure 1).

A small circular stack predicting ``ret`` targets.  Overflow wraps and
silently corrupts the oldest entries, as in real hardware.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor."""

    def __init__(self, depth: int = 16):
        if depth <= 0:
            raise ValueError(f"RAS depth must be positive, got {depth}")
        self.depth = depth
        self._entries: List[Optional[int]] = [None] * depth
        self._top = 0
        self._live = 0
        self.overflows = 0
        self.underflows = 0
        #: Mutation epoch (see :attr:`DataCache.mutations`).
        self.mutations = 0

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        self.mutations += 1
        if self._entries[self._top] is not None:
            self.overflows += 1
        else:
            self._live += 1
        self._entries[self._top] = return_address
        self._top = (self._top + 1) % self.depth

    def pop(self) -> Optional[int]:
        """Predict (and consume) the target of a return.

        Popping an empty stack -- a ``ret`` with no call on record, e.g.
        after a flush or a longjmp-style imbalance -- returns ``None``
        without moving the stack pointer, and counts an underflow.  The
        machine treats the ``None`` prediction as a return misprediction
        (real hardware redirects from the BTB/fall-through and usually
        mispredicts).
        """
        self.mutations += 1
        if self._live == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        predicted = self._entries[self._top]
        self._entries[self._top] = None
        self._live -= 1
        return predicted

    def flush(self) -> None:
        """Drop all entries."""
        self.mutations += 1
        self._entries = [None] * self.depth
        self._top = 0
        self._live = 0

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> tuple:
        """Checkpoint: entries, stack pointer, live count, event counters."""
        return (tuple(self._entries), self._top, self._live,
                self.overflows, self.underflows)

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot`."""
        self.mutations += 1
        entries, self._top, self._live, self.overflows, self.underflows = snap
        self._entries = list(entries)
