"""Simulated performance counters.

The paper measures branch mispredictions "by measuring the performance
counters or the timing difference" (Section 4.4).  The simulator exposes
the same quantities directly: global and per-PC execution / misprediction
counts for conditional branches, and totals for every branch kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PerfCounters:
    """Branch-related event counts."""

    conditional_branches: int = 0
    conditional_mispredictions: int = 0
    taken_branches: int = 0
    indirect_branches: int = 0
    indirect_mispredictions: int = 0
    returns: int = 0
    #: Returns predicted with an empty RAS; every one also counts as an
    #: indirect misprediction.
    ras_underflows: int = 0
    instructions: int = 0
    transient_instructions: int = 0
    speculation_windows: int = 0
    per_pc_executions: Dict[int, int] = field(default_factory=dict)
    per_pc_mispredictions: Dict[int, int] = field(default_factory=dict)

    def record_conditional(self, pc: int, mispredicted: bool) -> None:
        """Count one resolved conditional branch."""
        self.conditional_branches += 1
        # try/except beats dict.get here: a hot branch PC hits its own
        # entry on every commit after the first.
        try:
            self.per_pc_executions[pc] += 1
        except KeyError:
            self.per_pc_executions[pc] = 1
        if mispredicted:
            self.conditional_mispredictions += 1
            try:
                self.per_pc_mispredictions[pc] += 1
            except KeyError:
                self.per_pc_mispredictions[pc] = 1

    def misprediction_rate(self, pc: int) -> float:
        """Misprediction rate of the conditional branch at ``pc``."""
        executed = self.per_pc_executions.get(pc, 0)
        if executed == 0:
            return 0.0
        return self.per_pc_mispredictions.get(pc, 0) / executed

    def snapshot(self) -> "PerfCounters":
        """An independent copy (for before/after deltas)."""
        return PerfCounters(
            conditional_branches=self.conditional_branches,
            conditional_mispredictions=self.conditional_mispredictions,
            taken_branches=self.taken_branches,
            indirect_branches=self.indirect_branches,
            indirect_mispredictions=self.indirect_mispredictions,
            returns=self.returns,
            ras_underflows=self.ras_underflows,
            instructions=self.instructions,
            transient_instructions=self.transient_instructions,
            speculation_windows=self.speculation_windows,
            per_pc_executions=dict(self.per_pc_executions),
            per_pc_mispredictions=dict(self.per_pc_mispredictions),
        )

    def restore(self, snap: "PerfCounters") -> None:
        """Reset in place to a prior :meth:`snapshot`.

        In-place (rather than swapping the object) so that machine hooks
        and benchmarks holding a reference keep observing the live
        counters across a :meth:`repro.cpu.machine.Machine.restore`.
        """
        self.conditional_branches = snap.conditional_branches
        self.conditional_mispredictions = snap.conditional_mispredictions
        self.taken_branches = snap.taken_branches
        self.indirect_branches = snap.indirect_branches
        self.indirect_mispredictions = snap.indirect_mispredictions
        self.returns = snap.returns
        self.ras_underflows = snap.ras_underflows
        self.instructions = snap.instructions
        self.transient_instructions = snap.transient_instructions
        self.speculation_windows = snap.speculation_windows
        self.per_pc_executions = dict(snap.per_pc_executions)
        self.per_pc_mispredictions = dict(snap.per_pc_mispredictions)

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counts accumulated since ``earlier`` (a prior snapshot)."""
        per_pc_executions = {
            pc: count - earlier.per_pc_executions.get(pc, 0)
            for pc, count in self.per_pc_executions.items()
            if count - earlier.per_pc_executions.get(pc, 0)
        }
        per_pc_mispredictions = {
            pc: count - earlier.per_pc_mispredictions.get(pc, 0)
            for pc, count in self.per_pc_mispredictions.items()
            if count - earlier.per_pc_mispredictions.get(pc, 0)
        }
        return PerfCounters(
            conditional_branches=(self.conditional_branches
                                  - earlier.conditional_branches),
            conditional_mispredictions=(self.conditional_mispredictions
                                        - earlier.conditional_mispredictions),
            taken_branches=self.taken_branches - earlier.taken_branches,
            indirect_branches=self.indirect_branches - earlier.indirect_branches,
            indirect_mispredictions=(self.indirect_mispredictions
                                     - earlier.indirect_mispredictions),
            returns=self.returns - earlier.returns,
            ras_underflows=self.ras_underflows - earlier.ras_underflows,
            instructions=self.instructions - earlier.instructions,
            transient_instructions=(self.transient_instructions
                                    - earlier.transient_instructions),
            speculation_windows=(self.speculation_windows
                                 - earlier.speculation_windows),
            per_pc_executions=per_pc_executions,
            per_pc_mispredictions=per_pc_mispredictions,
        )
