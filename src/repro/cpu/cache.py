"""A simple set-associative data cache with flush+reload semantics.

The AES case study (Section 9) leaks the transient reduced-round
ciphertext through the data cache: the wrong-path gadget loads
``probe_array[byte * page_size]`` and the attacker later measures reload
latencies to find the touched page (Flush+Reload [70]).  The model only
needs to distinguish hit from miss deterministically; latencies use
representative constants.

The set index is an XOR fold of the line address rather than a plain bit
slice: page-stride probe arrays (the 4KiB-slot Flush+Reload buffer of
Section 9) would otherwise alias into a handful of sets and the reload
pass would evict its own signal.  Real attacks probe through the last-
level cache, which is both large and hash-indexed; the fold models that.
"""

from __future__ import annotations

from typing import List

from repro.utils.bits import fold_xor


class DataCache:
    """LRU set-associative cache of line addresses."""

    def __init__(
        self,
        sets: int = 1024,
        ways: int = 8,
        line_size: int = 64,
        hit_latency: int = 4,
        miss_latency: int = 300,
    ):
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        if line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        self.sets = sets
        self.ways = ways
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._offset_bits = line_size.bit_length() - 1
        self._index_bits = sets.bit_length() - 1
        self._sets: List[List[int]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0
        #: Mutation epoch: bumped by every state-changing public method
        #: (accesses, flushes, restores).  Not part of the snapshot --
        #: it is identity metadata that lets digest consumers (the
        #: machine digest cache, the trace-cache key) memoize hashes of
        #: this cache's state and invalidate on any mutation.
        self.mutations = 0
        #: line -> set index memo.  The fold is pure, and workloads hammer
        #: a bounded working set of lines (probe arrays, tables), so the
        #: memo converges quickly and turns the per-access fold into one
        #: dict lookup.
        self._index_memo: dict = {}
        #: Set indices mutated since the last restore, plus the snapshot
        #: object that restore ran from.  Restoring *the same snapshot
        #: object* again only needs to visit the dirty sets -- the
        #: restore-per-trial pattern (train once, checkpoint, restore
        #: before every trial) touches a handful of sets per trial, so
        #: this turns an O(sets) scan into an O(touched) one.
        self._dirty: set = set()
        self._dirty_all = True
        self._restore_source = None

    def _line(self, address: int) -> int:
        return address >> self._offset_bits

    def _index(self, line: int) -> int:
        index = self._index_memo.get(line)
        if index is None:
            if not self._index_bits:
                index = 0
            else:
                index = fold_xor(line, 48, self._index_bits)
            self._index_memo[line] = index
        return index

    def access(self, address: int) -> int:
        """Access ``address``: returns the latency and fills the line."""
        self.mutations += 1
        line = address >> self._offset_bits
        index = self._index_memo.get(line)
        if index is None:
            index = self._index(line)
        self._dirty.add(index)
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            self.hits += 1
            return self.hit_latency
        ways.insert(0, line)
        if len(ways) > self.ways:
            ways.pop()
        self.misses += 1
        return self.miss_latency

    # ----- batched probe-array operations -------------------------------------
    #
    # Flush+Reload sweeps thousands of fixed slots per measurement; the
    # per-call overhead of ``access``/``flush`` dominates those sweeps.
    # Callers resolve their (line, set-index) pairs once and replay them
    # through these batch methods, which keep hit/miss accounting and LRU
    # movement identical to the one-at-a-time primitives.

    def resolve_lines(self, addresses) -> List[tuple]:
        """Pre-resolve ``(line, set index)`` pairs for a fixed address list."""
        resolved = []
        for address in addresses:
            line = address >> self._offset_bits
            resolved.append((line, self._index(line)))
        return resolved

    def access_resolved(self, resolved) -> List[bool]:
        """Access each pre-resolved line; True where it hit.

        Equivalent to calling :meth:`access` per address (same fills,
        evictions, and counters), minus the per-call dispatch.
        """
        self.mutations += 1
        sets = self._sets
        limit = self.ways
        hit_count = 0
        results = []
        append = results.append
        dirty = self._dirty.add
        for line, index in resolved:
            dirty(index)
            ways = sets[index]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                hit_count += 1
                append(True)
            else:
                ways.insert(0, line)
                if len(ways) > limit:
                    ways.pop()
                append(False)
        self.hits += hit_count
        self.misses += len(results) - hit_count
        return results

    def flush_resolved(self, resolved) -> None:
        """Evict each pre-resolved line (batched ``clflush`` loop)."""
        self.mutations += 1
        sets = self._sets
        dirty = self._dirty.add
        for line, index in resolved:
            dirty(index)
            ways = sets[index]
            if line in ways:
                ways.remove(line)

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is cached (no LRU effect)."""
        line = self._line(address)
        return line in self._sets[self._index(line)]

    def flush(self, address: int) -> None:
        """Evict the line holding ``address`` (the ``clflush`` primitive)."""
        self.mutations += 1
        line = self._line(address)
        index = self._index(line)
        self._dirty.add(index)
        ways = self._sets[index]
        if line in ways:
            ways.remove(line)

    def flush_all(self) -> None:
        """Evict everything (``wbinvd``)."""
        self.mutations += 1
        self._dirty_all = True
        self._sets = [[] for _ in range(self.sets)]

    def populated_lines(self) -> int:
        """Total cached lines."""
        return sum(len(ways) for ways in self._sets)

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> tuple:
        """Sparse checkpoint: non-empty sets (LRU order) plus counters."""
        lines = {
            index: tuple(ways)
            for index, ways in enumerate(self._sets) if ways
        }
        return lines, self.hits, self.misses

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot`; only diverged sets are rewritten.

        Restoring the *same snapshot object* consecutively visits only
        the sets mutated since the previous restore.
        """
        self.mutations += 1
        lines, self.hits, self.misses = snap
        sets = self._sets
        if snap is self._restore_source and not self._dirty_all:
            for index in self._dirty:
                wanted = lines.get(index)
                ways = sets[index]
                if wanted is None:
                    if ways:
                        sets[index] = []
                elif len(ways) != len(wanted) or tuple(ways) != wanted:
                    sets[index] = list(wanted)
        else:
            for index, ways in enumerate(sets):
                wanted = lines.get(index)
                if wanted is None:
                    if ways:
                        sets[index] = []
                elif len(ways) != len(wanted) or tuple(ways) != wanted:
                    sets[index] = list(wanted)
        self._restore_source = snap
        self._dirty_all = False
        self._dirty.clear()
        #: Epoch value right after this restore: while ``mutations``
        #: still equals it, the cache state IS the snapshot's state,
        #: which lets digest consumers memoize per snapshot object
        #: instead of re-hashing after every restore.
        self._restored_epoch = self.mutations
