"""A simple set-associative data cache with flush+reload semantics.

The AES case study (Section 9) leaks the transient reduced-round
ciphertext through the data cache: the wrong-path gadget loads
``probe_array[byte * page_size]`` and the attacker later measures reload
latencies to find the touched page (Flush+Reload [70]).  The model only
needs to distinguish hit from miss deterministically; latencies use
representative constants.

The set index is an XOR fold of the line address rather than a plain bit
slice: page-stride probe arrays (the 4KiB-slot Flush+Reload buffer of
Section 9) would otherwise alias into a handful of sets and the reload
pass would evict its own signal.  Real attacks probe through the last-
level cache, which is both large and hash-indexed; the fold models that.
"""

from __future__ import annotations

from typing import List

from repro.utils.bits import fold_xor


class DataCache:
    """LRU set-associative cache of line addresses."""

    def __init__(
        self,
        sets: int = 1024,
        ways: int = 8,
        line_size: int = 64,
        hit_latency: int = 4,
        miss_latency: int = 300,
    ):
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        if line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        self.sets = sets
        self.ways = ways
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._offset_bits = line_size.bit_length() - 1
        self._index_bits = sets.bit_length() - 1
        self._sets: List[List[int]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _line(self, address: int) -> int:
        return address >> self._offset_bits

    def _index(self, line: int) -> int:
        if not self._index_bits:
            return 0
        return fold_xor(line, 48, self._index_bits)

    def access(self, address: int) -> int:
        """Access ``address``: returns the latency and fills the line."""
        line = self._line(address)
        ways = self._sets[self._index(line)]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            self.hits += 1
            return self.hit_latency
        ways.insert(0, line)
        if len(ways) > self.ways:
            ways.pop()
        self.misses += 1
        return self.miss_latency

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is cached (no LRU effect)."""
        line = self._line(address)
        return line in self._sets[self._index(line)]

    def flush(self, address: int) -> None:
        """Evict the line holding ``address`` (the ``clflush`` primitive)."""
        line = self._line(address)
        ways = self._sets[self._index(line)]
        if line in ways:
            ways.remove(line)

    def flush_all(self) -> None:
        """Evict everything (``wbinvd``)."""
        self._sets = [[] for _ in range(self.sets)]

    def populated_lines(self) -> int:
        """Total cached lines."""
        return sum(len(ways) for ways in self._sets)
