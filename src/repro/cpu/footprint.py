"""The branch footprint function (paper Figure 2).

Every *taken* branch folds a 16-bit "footprint" into the PHR.  The
footprint mixes 16 bits of the branch address (B15..B0) with 6 bits of the
target address (T5..T0).  The exact bit placement below is reconstructed
from Figure 2 of the paper; the two properties the attack primitives rely
on are stated there explicitly and are preserved:

* a branch whose address bits B15..B0 are zero and whose target bits
  T5..T0 are zero has an all-zero footprint (``Shift_PHR``), and
* with an otherwise-zero branch, target bits T0/T1 control exactly
  doublet 0 of the footprint (``Write_PHR``).

Layout (footprint bit index: source):

====  ==========
bit   source
====  ==========
f15   B12
f14   B13
f13   B5
f12   B6
f11   B7
f10   B8
f9    B9
f8    B10
f7    B0 ^ T2
f6    B1 ^ T3
f5    B2 ^ T4
f4    B11 ^ T5
f3    B14
f2    B15
f1    B3 ^ T0
f0    B4 ^ T1
====  ==========
"""

from __future__ import annotations

from typing import List, Tuple

from repro.utils.bits import bit

#: Width of the footprint in bits (8 doublets).
FOOTPRINT_BITS = 16

#: (branch_address_bit, target_address_bit_or_None) per footprint bit,
#: listed from f15 down to f0.
_FOOTPRINT_LAYOUT: Tuple[Tuple[int, int], ...] = (
    (12, -1),
    (13, -1),
    (5, -1),
    (6, -1),
    (7, -1),
    (8, -1),
    (9, -1),
    (10, -1),
    (0, 2),
    (1, 3),
    (2, 4),
    (11, 5),
    (14, -1),
    (15, -1),
    (3, 0),
    (4, 1),
)


def branch_footprint_reference(branch_address: int,
                               target_address: int) -> int:
    """Bit-at-a-time footprint -- the executable form of the layout table.

    Retained as the specification that :func:`branch_footprint` (the LUT
    fast path) is property-tested against; see
    ``tests/test_shortcut_equivalence.py``.
    """
    footprint = 0
    for position, (b_index, t_index) in enumerate(_FOOTPRINT_LAYOUT):
        value = bit(branch_address, b_index)
        if t_index >= 0:
            value ^= bit(target_address, t_index)
        footprint |= value << (FOOTPRINT_BITS - 1 - position)
    return footprint


def _footprint_luts(
    layout: Tuple[Tuple[int, int], ...] = _FOOTPRINT_LAYOUT,
    branch_bits: int = 16,
    target_bits: int = 6,
) -> Tuple[List[int], List[int]]:
    """Build the two footprint lookup tables from a layout table.

    The footprint is GF(2)-linear in the address bits, so it splits into
    independent contributions of ``branch_address[branch_bits-1:0]`` and
    ``target[target_bits-1:0]`` that XOR together.  Both tables are
    filled by subset-DP over the per-bit contributions -- one XOR per
    entry -- keeping the layout tuple the single source of truth.  The
    same builder serves every register family's layout (the Intel
    Figure 2 table above, the M1-style table below).
    """
    branch_contribution = [0] * branch_bits
    target_contribution = [0] * target_bits
    for position, (b_index, t_index) in enumerate(layout):
        placed = 1 << (FOOTPRINT_BITS - 1 - position)
        branch_contribution[b_index] ^= placed
        if t_index >= 0:
            target_contribution[t_index] ^= placed

    branch_lut = [0] * (1 << branch_bits)
    for index, contribution in enumerate(branch_contribution):
        size = 1 << index
        for prefix in range(size):
            branch_lut[size | prefix] = branch_lut[prefix] ^ contribution
    target_lut = [0] * (1 << target_bits)
    for index, contribution in enumerate(target_contribution):
        size = 1 << index
        for prefix in range(size):
            target_lut[size | prefix] = target_lut[prefix] ^ contribution
    return branch_lut, target_lut


#: Footprint contribution of ``branch_address[15:0]`` / ``target[5:0]``.
_BRANCH_LUT, _TARGET_LUT = _footprint_luts()


def branch_footprint(branch_address: int, target_address: int) -> int:
    """Return the 16-bit PHR footprint of a taken branch.

    ``branch_address`` is the address of the branch instruction itself and
    ``target_address`` the address it transfers control to.  Computed as
    two table lookups (see :func:`_footprint_luts`); bit-identical to
    :func:`branch_footprint_reference`.
    """
    return (_BRANCH_LUT[branch_address & 0xFFFF]
            ^ _TARGET_LUT[target_address & 0x3F])


def footprint_doublet(branch_address: int, target_address: int,
                      index: int) -> int:
    """Return doublet ``index`` (0..7) of the branch footprint."""
    if not 0 <= index < FOOTPRINT_BITS // 2:
        raise ValueError(f"footprint doublet index out of range: {index}")
    footprint = branch_footprint(branch_address, target_address)
    return (footprint >> (2 * index)) & 0b11


# ----------------------------------------------------------------------
# the M1-style footprint (arXiv 2502.10719)
# ----------------------------------------------------------------------
#
# The Firestorm reverse engineering reports a PHR-like history whose
# per-branch hash mixes *more target bits* than Intel's and whose update
# rule records conditional branches of both directions.  The exact bit
# placement is not published at Figure 2 fidelity, so this layout is a
# documented model (DESIGN.md discipline: state the assumption, preserve
# the properties attacks rely on):
#
# * 16 branch-address bits B15..B0 and 8 target bits T7..T0 contribute,
#   each exactly once, so the hash stays GF(2)-linear and LUT-friendly;
# * a branch with zero B15..B0 and zero T7..T0 has an all-zero footprint
#   (the Shift_PHR property holds for this family too);
# * T0/T1 land alone in the low doublet (the Write_PHR property).

#: (branch_address_bit, target_address_bit_or_None) per footprint bit,
#: f15 down to f0, for the M1-style register family.
M1_FOOTPRINT_LAYOUT: Tuple[Tuple[int, int], ...] = (
    (15, 7),
    (14, 6),
    (13, -1),
    (12, -1),
    (11, 5),
    (10, 4),
    (9, -1),
    (8, -1),
    (7, 3),
    (6, 2),
    (5, -1),
    (0, -1),
    (1, -1),
    (2, -1),
    (3, 1),
    (4, 0),
)

#: Footprint contribution of ``branch_address[15:0]`` / ``target[7:0]``
#: under the M1-style layout.
_M1_BRANCH_LUT, _M1_TARGET_LUT = _footprint_luts(
    M1_FOOTPRINT_LAYOUT, branch_bits=16, target_bits=8)


def m1_branch_footprint(branch_address: int, target_address: int) -> int:
    """The 16-bit M1-style footprint of a *taken* conditional branch."""
    return (_M1_BRANCH_LUT[branch_address & 0xFFFF]
            ^ _M1_TARGET_LUT[target_address & 0xFF])


def m1_fallthrough_footprint(branch_address: int) -> int:
    """The M1-style footprint of a *not-taken* conditional branch.

    Modeled per the arXiv 2502.10719 finding that Firestorm's history
    distinguishes branch direction: the not-taken record hashes the
    branch address only (there is no taken target to mix), so a taken
    and a not-taken commit of the same branch write different doublets
    and the history disambiguates direction patterns, not just paths.
    """
    return _M1_BRANCH_LUT[branch_address & 0xFFFF]


def footprint_bit_sources() -> List[str]:
    """Human-readable description of each footprint bit, f15 first.

    Used by the Figure 2 benchmark to print the layout next to the paper's.
    """
    descriptions = []
    for b_index, t_index in _FOOTPRINT_LAYOUT:
        if t_index >= 0:
            descriptions.append(f"B{b_index}^T{t_index}")
        else:
            descriptions.append(f"B{b_index}")
    return descriptions
