"""Pattern history tables (paper Section 2.2.2, Figure 3).

The CBP comprises a *base predictor* indexed by the low 13 bits of the PC,
plus three 4-way set-associative tagged tables of 512 sets.  Table ``i``
is indexed by a 9-bit function of the PC and an increasing slice of the
PHR (34 / 66 / 194 low doublets), with one PC bit (PC[5] or PC[4])
injected into the index and a tag formed from PC and PHR.

The paper does not publish the exact fold polynomials, so we use a
documented XOR fold (see DESIGN.md, decision 2).  The property every
attack depends on -- two lookups with equal ``(PC mod 2^16, PHR)`` always
hit the same entry, while different histories rarely do -- holds by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.cpu.saturating import SaturatingCounter
from repro.utils.bits import bit, bits, fold_xor

#: Index width: 8 folded history bits + 1 PC bit -> 512 sets.
INDEX_BITS = 9


@dataclass
class TaggedEntry:
    """One way of a tagged table set."""

    tag: int
    counter: SaturatingCounter
    useful: int = 0


class BasePredictor:
    """The PC-indexed bimodal predictor (Table 0 in Figure 3)."""

    def __init__(self, index_bits: int = 13, counter_bits: int = 3):
        self.index_bits = index_bits
        self.counter_bits = counter_bits
        self._counters: List[Optional[SaturatingCounter]] = (
            [None] * (1 << index_bits)
        )

    def index(self, pc: int) -> int:
        """Set index for ``pc`` -- simply PC[index_bits-1:0]."""
        return bits(pc, self.index_bits - 1, 0)

    def counter_at(self, pc: int) -> SaturatingCounter:
        """The (lazily created) counter for ``pc``."""
        idx = self.index(pc)
        counter = self._counters[idx]
        if counter is None:
            counter = SaturatingCounter(self.counter_bits)
            self._counters[idx] = counter
        return counter

    def predict(self, pc: int) -> bool:
        """Current prediction for ``pc``."""
        return self.counter_at(pc).prediction

    def update(self, pc: int, taken: bool) -> None:
        """Train toward the observed outcome."""
        self.counter_at(pc).update(taken)

    def flush(self) -> None:
        """Drop all state (mitigation experiments)."""
        self._counters = [None] * (1 << self.index_bits)

    def populated_entries(self) -> int:
        """Number of counters that have been touched."""
        return sum(1 for counter in self._counters if counter is not None)


class TaggedTable:
    """One PHR-indexed tagged component (Tables 1-3 in Figure 3)."""

    def __init__(
        self,
        history_doublets: int,
        sets: int = 512,
        ways: int = 4,
        counter_bits: int = 3,
        tag_bits: int = 11,
        pc_index_bit: int = 5,
    ):
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        self.history_doublets = history_doublets
        self.history_bits = 2 * history_doublets
        self.sets = sets
        self.ways = ways
        self.counter_bits = counter_bits
        self.tag_bits = tag_bits
        self.pc_index_bit = pc_index_bit
        self._sets: List[List[TaggedEntry]] = [[] for _ in range(sets)]

    # ----- hashing -----------------------------------------------------------

    def index(self, pc: int, phr: PathHistoryRegister) -> int:
        """9-bit set index: 8 folded history bits + one PC bit."""
        history = phr.low_bits(self.history_bits)
        folded = fold_xor(history, self.history_bits, INDEX_BITS - 1)
        return folded | (bit(pc, self.pc_index_bit) << (INDEX_BITS - 1))

    def tag(self, pc: int, phr: PathHistoryRegister) -> int:
        """Tag over the PC low bits and the table's history window."""
        history = phr.low_bits(self.history_bits)
        history_fold = fold_xor(history, self.history_bits, self.tag_bits)
        # A second, offset fold decorrelates the tag from the index so that
        # index-aliasing histories rarely also tag-alias.
        history_fold ^= fold_xor(history >> 3, max(self.history_bits - 3, 1),
                                 self.tag_bits)
        pc_fold = fold_xor(bits(pc, 15, 0), 16, self.tag_bits)
        return history_fold ^ pc_fold

    # ----- lookup / update -----------------------------------------------------

    def lookup(self, pc: int, phr: PathHistoryRegister) -> Optional[TaggedEntry]:
        """Return the matching entry for ``(pc, phr)``, if present."""
        wanted = self.tag(pc, phr)
        for entry in self._sets[self.index(pc, phr)]:
            if entry.tag == wanted:
                return entry
        return None

    def allocate(self, pc: int, phr: PathHistoryRegister,
                 taken: bool) -> TaggedEntry:
        """Install a weak entry for ``(pc, phr)``, evicting if needed.

        The victim is the least-useful way; surviving ways have their
        usefulness decayed, the standard TAGE anti-ping-pong measure.
        """
        index = self.index(pc, phr)
        ways = self._sets[index]
        entry = TaggedEntry(
            tag=self.tag(pc, phr),
            counter=SaturatingCounter.weak(self.counter_bits, taken),
        )
        if len(ways) < self.ways:
            ways.append(entry)
            return entry
        victim_position = min(range(len(ways)), key=lambda i: ways[i].useful)
        for position, existing in enumerate(ways):
            if position != victim_position and existing.useful > 0:
                existing.useful -= 1
        ways[victim_position] = entry
        return entry

    def flush(self) -> None:
        """Drop all entries (mitigation experiments)."""
        self._sets = [[] for _ in range(self.sets)]

    def populated_entries(self) -> int:
        """Total live entries across all sets."""
        return sum(len(ways) for ways in self._sets)

    def set_occupancy(self, index: int) -> int:
        """Live ways in set ``index``."""
        return len(self._sets[index])


def default_history_lengths(phr_capacity: int) -> Tuple[int, int, int]:
    """The geometric history window lengths for the three tagged tables.

    Alder/Raptor Lake use 34/66/194 doublets (Figure 3); for smaller PHRs
    (Skylake's 93) the longest table is capped at the PHR capacity.
    """
    return (
        min(34, phr_capacity),
        min(66, phr_capacity),
        phr_capacity,
    )
