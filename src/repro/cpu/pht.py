"""Pattern history tables (paper Section 2.2.2, Figure 3).

The CBP comprises a *base predictor* indexed by the low 13 bits of the PC,
plus three 4-way set-associative tagged tables of 512 sets.  Table ``i``
is indexed by a 9-bit function of the PC and an increasing slice of the
PHR (34 / 66 / 194 low doublets), with one PC bit (PC[5] or PC[4])
injected into the index and a tag formed from PC and PHR.

The paper does not publish the exact fold polynomials, so we use a
documented XOR fold (see DESIGN.md, decision 2).  The property every
attack depends on -- two lookups with equal ``(PC mod 2^16, PHR)`` always
hit the same entry, while different histories rarely do -- holds by
construction.

Hot path (DESIGN.md decision 5): every branch commit funnels through
``index``/``tag``, so each table maintains *incrementally folded* history
registers in the TAGE style instead of re-folding the full PHR per
lookup.  The registers are keyed by ``(phr, phr.version)``; a journalled
taken-branch step advances them in O(1) (two circular-shift steps plus a
footprint fold), any other PHR mutation lazily triggers a from-scratch
refold via the halving ``fold_xor``.  ``_reference_index`` and
``_reference_tag`` retain the definitional chunk-loop folds and property
tests pin the two paths bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.cpu.saturating import SaturatingCounter
from repro.utils.bits import (
    bit,
    bits,
    compiled_fold,
    fold_xor,
    fold_xor_reference,
    mask,
)

#: Index width: 8 folded history bits + 1 PC bit -> 512 sets.
INDEX_BITS = 9


@dataclass(slots=True)
class TaggedEntry:
    """One way of a tagged table set."""

    tag: int
    counter: SaturatingCounter
    useful: int = 0


class BasePredictor:
    """The PC-indexed bimodal predictor (Table 0 in Figure 3)."""

    def __init__(self, index_bits: int = 13, counter_bits: int = 3):
        self.index_bits = index_bits
        self.counter_bits = counter_bits
        self._index_mask = mask(index_bits)
        self._counters: List[Optional[SaturatingCounter]] = (
            [None] * (1 << index_bits)
        )
        #: Indices holding a live counter.  Maintained so that
        #: :meth:`snapshot`/:meth:`restore` touch only populated state
        #: instead of scanning all 2^index_bits slots; entries are added
        #: once per index (on lazy creation), never on the hot update path.
        self._populated: set = set()
        #: Mutation epoch (see :attr:`DataCache.mutations`).  ``counter_at``
        #: bumps it because it hands out a mutable counter; the CBP's own
        #: epoch covers the in-place counter writes of its update path.
        self.mutations = 0

    def index(self, pc: int) -> int:
        """Set index for ``pc`` -- simply PC[index_bits-1:0]."""
        return pc & self._index_mask

    def counter_at(self, pc: int) -> SaturatingCounter:
        """The (lazily created) counter for ``pc``."""
        self.mutations += 1
        idx = pc & self._index_mask
        counter = self._counters[idx]
        if counter is None:
            counter = SaturatingCounter(self.counter_bits)
            self._counters[idx] = counter
            self._populated.add(idx)
        return counter

    def predict(self, pc: int) -> bool:
        """Current prediction for ``pc``.

        Pure lookup: an index no branch has ever trained predicts the
        default (weakly not-taken) *without* materialising a counter, so
        predict-only probes leave :meth:`populated_entries` -- which the
        Section 10 mitigation benchmarks report -- untouched.
        """
        counter = self._counters[pc & self._index_mask]
        return counter is not None and counter.value >= counter.threshold

    def update(self, pc: int, taken: bool) -> None:
        """Train toward the observed outcome."""
        # counter_at, inlined: update runs on every committed branch.
        self.mutations += 1
        idx = pc & self._index_mask
        counter = self._counters[idx]
        if counter is None:
            counter = self._counters[idx] = SaturatingCounter(self.counter_bits)
            self._populated.add(idx)
        counter.update(taken)

    def flush(self) -> None:
        """Drop all state (mitigation experiments)."""
        self.mutations += 1
        self._counters = [None] * (1 << self.index_bits)
        self._populated.clear()

    def populated_entries(self) -> int:
        """Number of counters that have been trained."""
        return sum(1 for counter in self._counters if counter is not None)

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict:
        """Sparse value checkpoint ``{index: counter value}``.

        Keys are emitted in sorted order so equal predictor state always
        yields byte-identical serialized snapshots -- ``_populated`` is a
        set whose iteration order depends on insertion history, and the
        content digests of :mod:`repro.service.store` hash the pickled
        payload, not the dict's value equality.
        """
        counters = self._counters
        return {idx: counters[idx].value for idx in sorted(self._populated)}

    def restore(self, snap: dict) -> None:
        """Restore a :meth:`snapshot` in O(live + changed) work.

        Counters absent from the snapshot are dropped; surviving counters
        are rewritten in place (keeping object identity), and missing ones
        are recreated.
        """
        self.mutations += 1
        counters = self._counters
        for idx in self._populated - snap.keys():
            counters[idx] = None
        populated = set(snap)
        for idx, value in snap.items():
            counter = counters[idx]
            if counter is None:
                counters[idx] = SaturatingCounter(self.counter_bits, value)
            elif counter.value != value:
                counter.value = value
        self._populated = populated


class TaggedTable:
    """One PHR-indexed tagged component (Tables 1-3 in Figure 3)."""

    def __init__(
        self,
        history_doublets: int,
        sets: int = 512,
        ways: int = 4,
        counter_bits: int = 3,
        tag_bits: int = 11,
        pc_index_bit: int = 5,
    ):
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        self.history_doublets = history_doublets
        self.history_bits = 2 * history_doublets
        self.sets = sets
        self.ways = ways
        self.counter_bits = counter_bits
        self.tag_bits = tag_bits
        self.pc_index_bit = pc_index_bit
        self._sets: List[List[TaggedEntry]] = [[] for _ in range(sets)]
        #: Indices of non-empty sets (for sparse snapshot/restore); grown
        #: in :meth:`allocate`, cleared by :meth:`flush`/:meth:`restore`.
        self._populated: set = set()
        #: Mutation epoch (see :attr:`DataCache.mutations`).  ``probe``
        #: does not bump it: probe only touches the derived fold caches,
        #: which are not snapshot state.  The CBP's own epoch covers the
        #: in-place counter/useful writes of its update path.
        self.mutations = 0

        # ----- folded-history machinery ----------------------------------
        window = self.history_bits
        self._window_mask = mask(window)
        self._index_fold = compiled_fold(window, INDEX_BITS - 1)
        self._tag_fold = compiled_fold(window, tag_bits)
        self._tag_hi_width = max(window - 3, 1)
        self._tag_hi_fold = compiled_fold(self._tag_hi_width, tag_bits)
        self._tag_mask = mask(tag_bits)
        # Bit position at which a doublet evicted from the top of the
        # window re-enters its fold (the "outpoint" of a TAGE circular
        # fold): width-of-the-folded-value modulo the chunk width.
        self._index_evict_shift = window % (INDEX_BITS - 1)
        self._tag_evict_shift = window % tag_bits
        self._tag_hi_evict_shift = self._tag_hi_width % tag_bits
        # The O(1) advance inlines two-chunk folds of the 16-bit footprint
        # and assumes the window dwarfs it; tiny virtual tables fall back
        # to the (cheap) from-scratch refold.
        self._can_advance = tag_bits >= 8 and window >= 20
        # Fold cache: valid for PHR object `_fold_phr` at `_fold_version`.
        # `_fold_tags` is filled lazily -- most probes of an empty set
        # never need the tag folds at all.
        self._fold_phr: Optional[PathHistoryRegister] = None
        self._fold_version = -1
        self._fold_index = 0
        self._fold_tags: Optional[Tuple[int, int]] = None
        self._pc_folds: dict = {}

    # ----- hashing -----------------------------------------------------------

    def _refold(self, phr: PathHistoryRegister) -> None:
        """Recompute the index fold from scratch and re-key the cache."""
        folded = phr._value
        if folded > self._window_mask:
            folded &= self._window_mask
        self._fold_index = self._index_fold(folded)
        self._fold_tags = None
        self._fold_phr = phr
        self._fold_version = phr.version

    def _advance_step(self, old_value: int, footprint: int) -> None:
        """Advance the folds across one taken branch, in O(1).

        ``old_value`` is the PHR contents *before* the branch and
        ``footprint`` its 16-bit footprint: the window evolves as
        ``window' = ((window << 2) ^ footprint) & window_mask``.  Each
        fold absorbs the two evicted top bits at its outpoint while
        circularly shifting twice, then XORs in the (two-chunk) fold of
        the injected footprint -- the TAGE folded-register update.
        """
        window = self.history_bits
        top = (old_value >> (window - 2)) & 0b11
        evicted_first, evicted_second = top >> 1, top & 1

        folded = self._fold_index
        evict = self._index_evict_shift
        folded = (((folded << 1) | (folded >> 7)) & 0xFF) ^ (evicted_first << evict)
        folded = (((folded << 1) | (folded >> 7)) & 0xFF) ^ (evicted_second << evict)
        self._fold_index = folded ^ (footprint & 0xFF) ^ (footprint >> 8)

        tags = self._fold_tags
        if tags is not None:
            chunk = self.tag_bits
            rot = chunk - 1
            tag_mask = self._tag_mask
            low, high = tags
            evict = self._tag_evict_shift
            low = (((low << 1) | (low >> rot)) & tag_mask) ^ (evicted_first << evict)
            low = (((low << 1) | (low >> rot)) & tag_mask) ^ (evicted_second << evict)
            low ^= (footprint & tag_mask) ^ (footprint >> chunk)
            # The offset fold tracks window >> 3: shifting the window by a
            # doublet slides old window bits 1..2 into its low positions.
            injected = (footprint >> 3) ^ ((old_value >> 1) & 0b11)
            evict = self._tag_hi_evict_shift
            high = (((high << 1) | (high >> rot)) & tag_mask) ^ (evicted_first << evict)
            high = (((high << 1) | (high >> rot)) & tag_mask) ^ (evicted_second << evict)
            high ^= (injected & tag_mask) ^ (injected >> chunk)
            self._fold_tags = (low, high)

    def _sync(self, phr: PathHistoryRegister) -> None:
        """Bring the fold cache in step with ``phr``.

        O(1) per journalled taken branch; a full refold on any other
        mutation (or a journal gap), which the PHR signals through its
        version counter.
        """
        if phr is self._fold_phr:
            behind = phr.version - self._fold_version
            if behind == 0:
                return
            # Direct journal access (rather than phr.steps_since) keeps the
            # per-probe cost down; the deque holds (old_value, footprint)
            # pairs for the most recent taken-branch updates only.
            steps = phr._steps
            journalled = len(steps)
            if 0 < behind <= journalled and self._can_advance:
                for position in range(journalled - behind, journalled):
                    old_value, footprint = steps[position]
                    self._advance_step(old_value, footprint)
                self._fold_version = phr.version
                return
        self._refold(phr)

    def _tag_folds(self, phr: PathHistoryRegister) -> Tuple[int, int]:
        """The two folded tag registers, computing them on first use."""
        self._sync(phr)
        tags = self._fold_tags
        if tags is None:
            tags = self._refold_tags(phr)
        return tags

    def _refold_tags(self, phr: PathHistoryRegister) -> Tuple[int, int]:
        """Scratch-compute the tag folds for an already-synced cache."""
        window = phr._value & self._window_mask
        tags = (self._tag_fold(window), self._tag_hi_fold(window >> 3))
        self._fold_tags = tags
        return tags

    def _pc_fold(self, pc: int) -> int:
        """Memoised fold of PC[15:0] into the tag width."""
        key = pc & 0xFFFF
        fold = self._pc_folds.get(key)
        if fold is None:
            fold = self._pc_folds[key] = fold_xor(key, 16, self.tag_bits)
        return fold

    def index(self, pc: int, phr: PathHistoryRegister) -> int:
        """9-bit set index: 8 folded history bits + one PC bit."""
        self._sync(phr)
        return self._fold_index | (((pc >> self.pc_index_bit) & 1)
                                   << (INDEX_BITS - 1))

    def tag(self, pc: int, phr: PathHistoryRegister) -> int:
        """Tag over the PC low bits and the table's history window.

        A second, offset fold decorrelates the tag from the index so that
        index-aliasing histories rarely also tag-alias.
        """
        low, high = self._tag_folds(phr)
        return low ^ high ^ self._pc_fold(pc)

    # ----- reference hashes (the executable specification) ------------------

    def _reference_index(self, pc: int, phr: PathHistoryRegister) -> int:
        """:meth:`index` via the definitional chunk-loop fold."""
        history = phr.low_bits(self.history_bits)
        folded = fold_xor_reference(history, self.history_bits, INDEX_BITS - 1)
        return folded | (bit(pc, self.pc_index_bit) << (INDEX_BITS - 1))

    def _reference_tag(self, pc: int, phr: PathHistoryRegister) -> int:
        """:meth:`tag` via the definitional chunk-loop folds."""
        history = phr.low_bits(self.history_bits)
        history_fold = fold_xor_reference(history, self.history_bits,
                                          self.tag_bits)
        history_fold ^= fold_xor_reference(history >> 3,
                                           max(self.history_bits - 3, 1),
                                           self.tag_bits)
        pc_fold = fold_xor_reference(bits(pc, 15, 0), 16, self.tag_bits)
        return history_fold ^ pc_fold

    # ----- lookup / update -----------------------------------------------------

    def probe(
        self, pc: int, phr: PathHistoryRegister,
    ) -> Tuple[Optional[TaggedEntry], int, Optional[int]]:
        """One-pass lookup returning ``(entry, index, tag)``.

        The tag is computed only when the indexed set is occupied; a
        ``None`` tag means the probe missed on emptiness alone.  The
        ``(index, tag)`` pair is the reusable lookup key the CBP stashes
        in its :class:`~repro.cpu.cbp.Prediction` so the later update /
        allocate of the same branch never rehashes.
        """
        # _sync's fast path, inlined: probe runs three times per predicted
        # branch and the extra call frame is measurable.
        if phr is not self._fold_phr or self._fold_version != phr.version:
            self._sync(phr)
        index = self._fold_index | (((pc >> self.pc_index_bit) & 1)
                                    << (INDEX_BITS - 1))
        ways = self._sets[index]
        if not ways:
            return None, index, None
        tags = self._fold_tags
        if tags is None:
            # The cache is already synced; skip _tag_folds' re-sync.
            tags = self._refold_tags(phr)
        wanted = tags[0] ^ tags[1] ^ self._pc_fold(pc)
        for entry in ways:
            if entry.tag == wanted:
                return entry, index, wanted
        return None, index, wanted

    def lookup(self, pc: int, phr: PathHistoryRegister) -> Optional[TaggedEntry]:
        """Return the matching entry for ``(pc, phr)``, if present."""
        return self.probe(pc, phr)[0]

    def allocate(
        self,
        pc: int,
        phr: PathHistoryRegister,
        taken: bool,
        key: Optional[Tuple[int, Optional[int]]] = None,
    ) -> TaggedEntry:
        """Install a weak entry for ``(pc, phr)``, evicting if needed.

        ``key`` is an optional precomputed ``(index, tag)`` pair from a
        prior :meth:`probe` of the same ``(pc, phr)`` (the tag half may be
        ``None``); passing it skips the rehash.

        If a way with the same tag already lives in the set, that entry is
        re-seeded in place -- weak counter toward ``taken``, usefulness
        cleared -- rather than installing a duplicate.  A duplicate would
        make :meth:`populated_entries` double-count and leave lookup and
        update racing between the two copies.

        Otherwise the victim is the least-useful way; surviving ways have
        their usefulness decayed, the standard TAGE anti-ping-pong measure.
        """
        self.mutations += 1
        if key is not None:
            index, tag = key
            if tag is None:
                tag = self.tag(pc, phr)
        else:
            index = self.index(pc, phr)
            tag = self.tag(pc, phr)
        ways = self._sets[index]
        for existing in ways:
            if existing.tag == tag:
                existing.counter.reset_weak(taken)
                existing.useful = 0
                return existing
        entry = TaggedEntry(
            tag=tag,
            counter=SaturatingCounter.weak(self.counter_bits, taken),
        )
        self._populated.add(index)
        if len(ways) < self.ways:
            ways.append(entry)
            return entry
        victim_position = 0
        least_useful = ways[0].useful
        for position in range(1, len(ways)):
            useful = ways[position].useful
            if useful < least_useful:
                victim_position = position
                least_useful = useful
        for position, existing in enumerate(ways):
            if position != victim_position and existing.useful > 0:
                existing.useful -= 1
        ways[victim_position] = entry
        return entry

    def flush(self) -> None:
        """Drop all entries (mitigation experiments)."""
        self.mutations += 1
        self._sets = [[] for _ in range(self.sets)]
        self._populated.clear()

    def populated_entries(self) -> int:
        """Total live entries across all sets."""
        return sum(len(ways) for ways in self._sets)

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> dict:
        """Sparse checkpoint ``{set index: ((tag, counter, useful), ...)}``.

        Only non-empty sets are copied; the derived fold caches are not
        state (they re-key lazily off the PHR version).
        """
        sets = self._sets
        # Sorted for canonical bytes (see BasePredictor.snapshot).
        return {
            index: tuple((entry.tag, entry.counter.value, entry.useful)
                         for entry in sets[index])
            for index in sorted(self._populated)
        }

    def restore(self, snap: dict) -> None:
        """Restore a :meth:`snapshot` in O(live + changed) work.

        Sets that already match the checkpoint are left untouched
        (preserving entry object identity); only diverged sets are
        rebuilt, so a restore after light perturbation costs roughly the
        perturbation, not the full table.
        """
        self.mutations += 1
        sets = self._sets
        for index in self._populated - snap.keys():
            sets[index] = []
        counter_bits = self.counter_bits
        for index, wanted in snap.items():
            ways = sets[index]
            if len(ways) == len(wanted) and all(
                entry.tag == tag and entry.counter.value == value
                and entry.useful == useful
                for entry, (tag, value, useful) in zip(ways, wanted)
            ):
                continue
            sets[index] = [
                TaggedEntry(tag=tag,
                            counter=SaturatingCounter(counter_bits, value),
                            useful=useful)
                for tag, value, useful in wanted
            ]
        self._populated = set(snap)

    def set_occupancy(self, index: int) -> int:
        """Live ways in set ``index``."""
        return len(self._sets[index])


# ----- array export / import --------------------------------------------
#
# The vectorized batch engine (repro.batch) holds predictor state as dense
# per-replica arrays.  These converters translate between the sparse
# snapshot formats above and that dense layout; they accept any indexable
# sequences (plain lists or numpy rows) so the batch engine can hand its
# array slices straight in.


def base_snapshot_to_dense(snap: dict, index_bits: int,
                           counter_bits: int) -> Tuple[list, list]:
    """Expand a :meth:`BasePredictor.snapshot` dict to dense arrays.

    Returns ``(values, populated)``, each of length ``2**index_bits``.
    Unpopulated slots carry the default (weakly not-taken) counter value
    so a dense consumer can treat "populated" as the only sparse fact.
    """
    size = 1 << index_bits
    default = (1 << (counter_bits - 1)) - 1
    values = [default] * size
    populated = [False] * size
    for index, value in snap.items():
        values[index] = int(value)
        populated[index] = True
    return values, populated


def base_snapshot_from_dense(values, populated) -> dict:
    """Inverse of :func:`base_snapshot_to_dense` (numpy rows welcome)."""
    return {
        index: int(values[index])
        for index, live in enumerate(populated) if live
    }


def table_snapshot_to_dense(snap: dict, sets: int,
                            ways: int) -> Tuple[list, list, list, list]:
    """Expand a :meth:`TaggedTable.snapshot` dict to dense arrays.

    Returns ``(tags, counters, useful, occupancy)``: three ``sets x ways``
    nested lists (zero-filled beyond each set's occupancy) plus the
    per-set occupancy vector.  Ways pack from position 0, mirroring the
    scalar table's append-order storage.
    """
    tags = [[0] * ways for _ in range(sets)]
    counters = [[0] * ways for _ in range(sets)]
    useful = [[0] * ways for _ in range(sets)]
    occupancy = [0] * sets
    for index, entries in snap.items():
        occupancy[index] = len(entries)
        for way, (tag, value, use) in enumerate(entries):
            tags[index][way] = int(tag)
            counters[index][way] = int(value)
            useful[index][way] = int(use)
    return tags, counters, useful, occupancy


def table_snapshot_from_dense(tags, counters, useful, occupancy) -> dict:
    """Inverse of :func:`table_snapshot_to_dense` (numpy rows welcome)."""
    snap = {}
    for index, occupied in enumerate(occupancy):
        occupied = int(occupied)
        if occupied:
            row_tags, row_counters, row_useful = (
                tags[index], counters[index], useful[index])
            snap[index] = tuple(
                (int(row_tags[way]), int(row_counters[way]),
                 int(row_useful[way]))
                for way in range(occupied)
            )
    return snap


def default_history_lengths(phr_capacity: int) -> Tuple[int, int, int]:
    """The geometric history window lengths for the three tagged tables.

    Alder/Raptor Lake use 34/66/194 doublets (Figure 3); for smaller PHRs
    (Skylake's 93) the longest table is capped at the PHR capacity.
    """
    return (
        min(34, phr_capacity),
        min(66, phr_capacity),
        phr_capacity,
    )
