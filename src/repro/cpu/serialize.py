"""Versioned byte serialization of :class:`MachineSnapshot` artifacts.

The snapshot format is the stable currency of the service layer
(ARCHITECTURE.md §11): the content-addressed checkpoint store persists
snapshots to disk and restores them in *other* processes, across worker
restarts, so the in-memory object graph alone is not enough.  An
artifact is::

    magic (8 bytes)  b"RPROSNAP"
    version (u16 BE) SNAPSHOT_FORMAT_VERSION
    payload          pickled builtins-only field mapping

The payload deliberately contains no project classes: every component
checkpoint is already sparse builtins (tuples/dicts/ints/strs), and the
one dataclass member (:class:`~repro.cpu.perf.PerfCounters`) is lowered
to its field dict.  That keeps old artifacts readable by any build whose
*format version* matches, independent of class-layout refactors -- and
makes a mismatch a loud :class:`SnapshotFormatError` instead of a
pickle-layer crash deep inside a worker.

Round-trips are bit-identical: ``snapshot_from_bytes(snapshot_to_bytes(s))
== s`` including perf counters and per-thread state, pinned by
``tests/test_snapshot_serialize.py`` and a fuzz diff arm.
"""

from __future__ import annotations

import dataclasses
import pickle

MAGIC = b"RPROSNAP"

#: Bump whenever the payload schema changes shape.  Readers refuse
#: artifacts from any other version -- a checkpoint silently restored
#: into the wrong field layout would corrupt every measurement built on
#: top of it.
#:
#: Version history: 1 = original eight-field payload; 2 = added
#: ``predictor_model`` (the predictor-family id, ARCHITECTURE.md §13),
#: making the family an explicit part of every persisted artifact so a
#: checkpoint can never be restored into a machine of another family.
SNAPSHOT_FORMAT_VERSION = 2

_HEADER_LEN = len(MAGIC) + 2


class SnapshotFormatError(ValueError):
    """The bytes are not a readable snapshot artifact of this version."""


def snapshot_to_bytes(snapshot) -> bytes:
    """Serialize a :class:`~repro.cpu.machine.MachineSnapshot`."""
    payload = {
        "cbp": snapshot.cbp,
        "btb": snapshot.btb,
        "ibp": snapshot.ibp,
        "cache": snapshot.cache,
        "perf": dataclasses.asdict(snapshot.perf),
        "threads": snapshot.threads,
        "ibrs_enabled": snapshot.ibrs_enabled,
        "phr_capacity": snapshot.phr_capacity,
        "predictor_model": snapshot.predictor_model,
    }
    header = MAGIC + SNAPSHOT_FORMAT_VERSION.to_bytes(2, "big")
    return header + pickle.dumps(payload, protocol=4)


def snapshot_from_bytes(data: bytes):
    """Deserialize a snapshot artifact; the exact inverse of
    :func:`snapshot_to_bytes`.

    Raises :class:`SnapshotFormatError` for anything that is not a
    complete artifact of :data:`SNAPSHOT_FORMAT_VERSION`: wrong magic,
    other versions, truncation, or a payload that does not decode to the
    expected field mapping.
    """
    from repro.cpu.machine import MachineSnapshot
    from repro.cpu.perf import PerfCounters

    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotFormatError(
            f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < _HEADER_LEN or data[:len(MAGIC)] != MAGIC:
        raise SnapshotFormatError(
            "not a snapshot artifact (bad or truncated magic header)")
    version = int.from_bytes(data[len(MAGIC):_HEADER_LEN], "big")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot artifact is format version {version}; this build "
            f"reads version {SNAPSHOT_FORMAT_VERSION}")
    try:
        payload = pickle.loads(data[_HEADER_LEN:])
    except Exception as exc:  # pickle raises a zoo of error types
        raise SnapshotFormatError(
            f"snapshot payload failed to decode: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotFormatError(
            f"snapshot payload decoded to {type(payload).__name__}, "
            f"expected a field mapping")
    expected = {"cbp", "btb", "ibp", "cache", "perf", "threads",
                "ibrs_enabled", "phr_capacity", "predictor_model"}
    if set(payload) != expected:
        missing = expected - set(payload)
        extra = set(payload) - expected
        raise SnapshotFormatError(
            f"snapshot payload has the wrong fields "
            f"(missing {sorted(missing)}, unexpected {sorted(extra)})")
    try:
        perf = PerfCounters(**payload["perf"])
    except TypeError as exc:
        raise SnapshotFormatError(
            f"snapshot perf counters failed to rebuild: {exc}") from exc
    return MachineSnapshot(
        cbp=payload["cbp"],
        btb=payload["btb"],
        ibp=payload["ibp"],
        cache=payload["cache"],
        perf=perf,
        threads=payload["threads"],
        ibrs_enabled=payload["ibrs_enabled"],
        phr_capacity=payload["phr_capacity"],
        predictor_model=payload["predictor_model"],
    )
