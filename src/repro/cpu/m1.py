"""The M1 Firestorm-style predictor family (arXiv 2502.10719).

"Reverse Engineering the Apple M1 Conditional Branch Predictor for
Out-of-Place Spectre Mistraining" (Tuby & Morrison) finds that
Firestorm's conditional branch predictor, like Intel's, keys its tables
on a PHR-style global *path* history -- but with a different per-branch
hash and a different update discipline.  This family models those
reported differences at the fidelity the rest of this reproduction
models Intel's (DESIGN.md discipline: documented layout, preserved
attack-relevant properties):

* **Footprint** -- :func:`repro.cpu.footprint.m1_branch_footprint`
  mixes 16 branch-address bits with *8* target bits (Intel mixes 6),
  under the documented M1-style layout.
* **Both directions recorded** -- every retired conditional branch
  shifts the history: taken branches fold the branch/target footprint,
  not-taken branches fold a branch-address-only footprint
  (:func:`repro.cpu.footprint.m1_fallthrough_footprint`).  An attacker
  therefore cannot hide a conditional from this family's history by
  making it fall through -- the property that makes M1-style history
  *denser* per retired branch and shifts where the paper's Shift/Write
  history-massaging macros land.
* **Unconditional taken branches** fold their footprint exactly like
  Intel's PHR (jumps and calls are path events on both).
* **Tables** -- the direction tables reuse the TAGE-style base + tagged
  structure (:class:`~repro.cpu.cbp.ConditionalBranchPredictor`); the
  tagged tables consume the M1 register through the same journalled
  folded-history machinery, so the hot path keeps its O(1) fold
  catch-up.

The :data:`~repro.cpu.config.FIRESTORM_M1` preset carries this
family's geometry (86-doublet history -- shorter than Raptor Lake's
194 because the M1 history fills twice as fast, recording both
directions).
"""

from __future__ import annotations

from repro.cpu.cbp import ConditionalBranchPredictor
from repro.cpu.footprint import m1_branch_footprint, m1_fallthrough_footprint
from repro.cpu.model import PredictorModel, register_model
from repro.cpu.phr import PathHistoryRegister


class M1PathHistoryRegister(PathHistoryRegister):
    """A PHR variant with the M1-style footprint and update discipline.

    Shares the shift/journal/fold mechanics of the base register --
    only the footprint function and the conditional-commit rule differ,
    which is exactly the seam :class:`~repro.cpu.phr.PathHistoryRegister`
    exposes for register families.
    """

    footprint = staticmethod(m1_branch_footprint)

    def on_conditional(self, branch_address: int, target_address: int,
                       taken: bool) -> None:
        """Record the conditional regardless of direction (M1 semantics)."""
        if taken:
            self.update(branch_address, target_address)
        else:
            self.inject(m1_fallthrough_footprint(branch_address))


@register_model
class M1PhrModel(PredictorModel):
    """The M1 Firestorm-style family."""

    model_id = "m1-phr"
    display_name = "M1-style PHR (both-direction path history)"
    provenance = "arXiv 2502.10719 (Tuby & Morrison), modeled layout"

    def build_direction_predictor(self) -> ConditionalBranchPredictor:
        config = self.config
        return ConditionalBranchPredictor(
            history_lengths=config.pht_history_lengths,
            sets=config.pht_sets,
            ways=config.pht_ways,
            counter_bits=config.counter_bits,
            tag_bits=config.pht_tag_bits,
            base_index_bits=config.base_index_bits,
            pc_index_bit=config.pc_index_bit,
        )

    def build_history(self) -> M1PathHistoryRegister:
        return M1PathHistoryRegister(self.config.phr_capacity)
