"""The path history register (PHR) -- paper Section 2.2.1.

The PHR records the last ``capacity`` taken branches (194 on Alder/Raptor
Lake, 93 on Skylake).  On every taken branch it shifts left by one doublet
(two bits) and XORs the 16-bit branch footprint into its low 8 doublets:

    PHR_new = (PHR_old << 2) ^ footprint

Not-taken branches leave it untouched.  Because even and odd bit planes
never mix, the natural unit is the *doublet* (2 bits); all APIs here work
in doublets, with doublet 0 the least significant.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Tuple

from repro.cpu.footprint import branch_footprint
from repro.utils.bits import mask

#: Taken-branch steps the register journals for incremental-fold catch-up.
#: Consumers that fall further behind recompute their folds from scratch,
#: which the halving ``fold_xor`` keeps cheap, so a short journal suffices.
STEP_JOURNAL_DEPTH = 8


class PathHistoryRegister:
    """A ``capacity``-doublet shift register with footprint injection.

    Every mutation bumps :attr:`version`, and plain taken-branch updates
    additionally journal ``(previous_value, footprint)`` so that folded-
    history consumers (the tagged PHTs) can advance their registers in
    O(1) per taken branch instead of re-folding the full history --
    the circular-fold discipline of real TAGE hardware.  Any other
    mutation (``set_value``/``shift``/``clear``/...) clears the journal,
    forcing those consumers to lazily recompute.
    """

    #: The footprint function of this register family.  Subclasses (the
    #: M1-style register of :mod:`repro.cpu.m1`) override it; the tagged
    #: tables and the step journal are footprint-agnostic, so the whole
    #: folded-history machinery carries over unchanged.
    footprint = staticmethod(branch_footprint)

    def __init__(self, capacity: int = 194, value: int = 0):
        # Hardware PHRs are always wide enough to hold a footprint, but
        # the register math is well defined for any positive width; the
        # Pathfinder search uses "virtual" registers as wide as the path
        # history under reconstruction, which can be arbitrarily short.
        if capacity < 1:
            raise ValueError(f"PHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._mask = mask(2 * capacity)
        self._value = value & self._mask
        #: Monotonic mutation counter; folded-history caches key on it.
        self.version = 0
        self._steps: deque = deque(maxlen=STEP_JOURNAL_DEPTH)

    # ----- inspection -------------------------------------------------------

    @property
    def value(self) -> int:
        """The raw register contents as a ``2*capacity``-bit integer."""
        return self._value

    @property
    def bits(self) -> int:
        """Total width in bits."""
        return 2 * self.capacity

    def doublet(self, index: int) -> int:
        """Doublet ``index`` (0 = least significant / most recent)."""
        if not 0 <= index < self.capacity:
            raise ValueError(f"doublet index out of range: {index}")
        return (self._value >> (2 * index)) & 0b11

    def doublets(self) -> List[int]:
        """All doublets, least significant first."""
        return [self.doublet(i) for i in range(self.capacity)]

    def low_bits(self, count: int) -> int:
        """The low ``count`` bits (used by PHT index/tag hashes)."""
        return self._value & mask(count)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathHistoryRegister):
            return (self.capacity, self._value) == (other.capacity, other._value)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.capacity, self._value))

    def __repr__(self) -> str:
        return f"PathHistoryRegister(capacity={self.capacity}, value={self._value:#x})"

    # ----- mutation ---------------------------------------------------------

    def update(self, branch_address: int, target_address: int) -> None:
        """Record one taken branch (shift one doublet, XOR footprint)."""
        footprint = self.footprint(branch_address, target_address)
        value = self._value
        self._steps.append((value, footprint))
        self._value = ((value << 2) ^ footprint) & self._mask
        self.version += 1

    def inject(self, footprint: int) -> None:
        """Shift one doublet and XOR a precomputed ``footprint``.

        The journalled core of :meth:`update`, exposed for register
        families whose commit rules inject footprints :meth:`update`
        cannot express (the M1-style register folds one for *not-taken*
        conditionals too).  Journal semantics match :meth:`update`, so
        folded-history consumers stay O(1) across these steps as well.
        """
        value = self._value
        self._steps.append((value, footprint))
        self._value = ((value << 2) ^ footprint) & self._mask
        self.version += 1

    # ----- machine commit hooks (the PredictorModel history protocol) -----

    def on_conditional(self, branch_address: int, target_address: int,
                       taken: bool) -> None:
        """Commit hook for a resolved conditional branch.

        Intel semantics (paper Section 2.2.1): only *taken* branches
        touch the PHR; a not-taken conditional leaves it untouched.
        Other register families override this -- the family's history
        update discipline lives here, not in :class:`Machine`.
        """
        if taken:
            self.update(branch_address, target_address)

    def on_taken(self, branch_address: int, target_address: int) -> None:
        """Commit hook for a taken non-conditional branch.

        Intel semantics: every taken branch folds its footprint,
        conditional or not -- the property the ``Shift_PHR`` macro and
        the Section 10 PHR-flush mitigation both rely on.
        """
        self.update(branch_address, target_address)

    def steps_since(self, version: int) -> Optional[Tuple[Tuple[int, int], ...]]:
        """The journalled ``(previous_value, footprint)`` taken-branch steps
        leading from ``version`` to the current version.

        Returns ``None`` when the gap is not bridgeable by journalled
        updates alone -- the journal is too short, or a non-update
        mutation intervened (those clear the journal).  Folded-history
        consumers then recompute from scratch.
        """
        behind = self.version - version
        if behind == 0:
            return ()
        if behind < 0 or behind > len(self._steps):
            return None
        steps = tuple(self._steps)
        return steps[len(steps) - behind:]

    def _invalidate(self) -> None:
        """Version-bump a non-update mutation and drop the step journal."""
        self._steps.clear()
        self.version += 1

    def shift(self, doublets: int = 1) -> None:
        """Shift left by ``doublets`` without injecting a footprint.

        This is the state transition performed by ``doublets`` taken
        branches with all-zero footprints (the ``Shift_PHR`` macro).
        """
        if doublets < 0:
            raise ValueError(f"shift amount must be non-negative: {doublets}")
        self._value = (self._value << (2 * doublets)) & self._mask
        self._invalidate()

    def clear(self) -> None:
        """Reset to all zeros (``Clear_PHR`` == ``Shift_PHR[capacity]``)."""
        self._value = 0
        self._invalidate()

    def set_value(self, value: int) -> None:
        """Force the raw register contents."""
        self._value = value & self._mask
        # _invalidate(), inlined: set_value is the hottest non-update
        # mutation (every attack arm re-seeds the PHR through it).
        self._steps.clear()
        self.version += 1

    def set_doublet(self, index: int, doublet: int) -> None:
        """Force doublet ``index`` to ``doublet`` (0..3)."""
        if not 0 <= doublet <= 0b11:
            raise ValueError(f"doublet value out of range: {doublet}")
        if not 0 <= index < self.capacity:
            raise ValueError(f"doublet index out of range: {index}")
        cleared = self._value & ~(0b11 << (2 * index))
        self._value = cleared | (doublet << (2 * index))
        self._invalidate()

    def copy(self) -> "PathHistoryRegister":
        """An independent copy (of the same register family)."""
        return type(self)(self.capacity, self._value)

    # ----- array export / import ---------------------------------------------

    def export_bits(self) -> List[int]:
        """The register contents as an LSB-first bit list.

        This is the array-state form the vectorized batch engine
        (:mod:`repro.batch`) keeps per replica: element ``i`` is bit ``i``
        of :attr:`value`, and the length is always ``2 * capacity``.
        """
        value = self._value
        return [(value >> index) & 1 for index in range(2 * self.capacity)]

    @staticmethod
    def pack_bits(bits_lsb_first) -> int:
        """Inverse of :meth:`export_bits`: bit sequence -> register value.

        Accepts any sequence of 0/1-valued items (including a numpy row),
        least significant bit first.
        """
        value = 0
        for index, bit_value in enumerate(bits_lsb_first):
            if bit_value:
                value |= 1 << index
        return value

    def restore_bits(self, bits_lsb_first) -> None:
        """Load an :meth:`export_bits`-shaped bit sequence.

        Journal/version semantics match :meth:`restore`: consumers of
        folded history resync afterwards.
        """
        self.restore(self.pack_bits(bits_lsb_first))

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> int:
        """Checkpoint: the raw register value (the PHR's only state)."""
        return self._value

    def restore(self, snap: int) -> None:
        """Restore a :meth:`snapshot`.

        Equivalent to :meth:`set_value`: the version bumps and the step
        journal drops even when the value is unchanged, so folded-history
        consumers resync rather than trusting a cache that may span the
        restore boundary.
        """
        self._value = snap & self._mask
        self._steps.clear()
        self.version += 1

    # ----- analysis helpers ---------------------------------------------------

    def reverse_update(self, branch_address: int,
                       target_address: int) -> Tuple[int, int]:
        """Undo one taken-branch update.

        Returns ``(previous_value, unknown_msb_doublet_index)``: every
        doublet of the pre-branch PHR is recovered except the most
        significant one, which was shifted out and is returned as zero.
        This is the inversion step used by both the Extended Read PHR
        primitive (Figure 5) and the Pathfinder path search.

        The register contents are untouched, but the version is bumped
        conservatively: analysis loops interleave ``reverse_update`` with
        raw value surgery, and a stale-but-matching version must never let
        a folded-history cache survive such a sequence.
        """
        footprint = self.footprint(branch_address, target_address)
        previous = ((self._value ^ footprint) >> 2) & mask(2 * (self.capacity - 1))
        self._invalidate()
        return previous, self.capacity - 1

    @classmethod
    def from_doublets(cls, doublets: Iterable[int],
                      capacity: Optional[int] = None) -> "PathHistoryRegister":
        """Build a PHR from doublets listed least significant first."""
        doublet_list = list(doublets)
        if capacity is None:
            capacity = len(doublet_list)
        if len(doublet_list) > capacity:
            raise ValueError("more doublets than capacity")
        value = 0
        for index, doublet in enumerate(doublet_list):
            if not 0 <= doublet <= 0b11:
                raise ValueError(f"doublet value out of range: {doublet}")
            value |= doublet << (2 * index)
        return cls(capacity, value)


def replay_taken_branches(
    capacity: int,
    branches: Iterable[Tuple[int, int]],
    initial_value: int = 0,
) -> PathHistoryRegister:
    """Compute the PHR after a sequence of taken ``(pc, target)`` branches.

    This is the pure-function form of the update used by ground-truth
    computations in tests and by the Pathfinder tool.
    """
    phr = PathHistoryRegister(capacity, initial_value)
    for branch_address, target_address in branches:
        phr.update(branch_address, target_address)
    return phr
