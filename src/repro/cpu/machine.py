"""The simulated machine: BPU + cache + speculation + protection domains.

A :class:`Machine` owns one physical core's shared predictor state (the
direction predictor's tables, the BTB, the IBP) and per-logical-thread
state (the history register and the RAS) -- the sharing granularity the
paper establishes in Section 7.3: *"the PHR is not shared between two
SMT threads ... the PHTs are indeed shared"*.

The conditional direction predictor and the history register are built
by a pluggable :class:`~repro.cpu.model.PredictorModel` family selected
through :attr:`MachineConfig.predictor_model` (ARCHITECTURE.md §13); the
machine itself is family-agnostic glue.  With the default ``intel-cbp``
family this is exactly the paper's machine -- CBP + 194-doublet PHR --
pinned bit-identical to the pre-interface behaviour by golden hashes.

Programs run through :meth:`Machine.run`, which wires the architectural
interpreter to microarchitectural hooks: every conditional branch is
predicted by the direction predictor, mispredictions trigger bounded
wrong-path (transient) execution whose loads perturb the data cache, and
every committed branch updates the running thread's history register
under the family's update discipline.

The machine also exposes the *functional* entry points the attack
primitives use on their fast path (`observe_conditional`,
`record_taken_branch`); tests assert these are bit-identical to running
the equivalent instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.cpu.btb import BranchTargetBuffer
from repro.cpu.cache import DataCache
from repro.cpu.config import MachineConfig, RAPTOR_LAKE
from repro.cpu.ibp import IndirectBranchPredictor
from repro.cpu.model import build_model
from repro.cpu.perf import PerfCounters
from repro.cpu.ras import ReturnAddressStack
from repro.cpu.serialize import SnapshotFormatError
from repro.isa.interpreter import (
    BranchKind,
    CpuHooks,
    CpuState,
    ExecutionResult,
    Interpreter,
)
from repro.isa.memory import Memory
from repro.isa.program import Program


@dataclass
class ThreadContext:
    """Per-logical-thread (SMT) microarchitectural state."""

    thread_id: int
    #: The thread's branch-history register, built by the machine's
    #: predictor family (:meth:`repro.cpu.model.PredictorModel.build_history`).
    #: Named ``phr`` for the paper's register; other families bind their
    #: own register kind here (e.g. a tournament GHR), all speaking the
    #: history protocol documented in :mod:`repro.cpu.model`.
    phr: Any
    ras: ReturnAddressStack
    #: Informational label of the security domain currently executing.
    domain: str = "user"


@dataclass(frozen=True)
class MachineSnapshot:
    """A value checkpoint of every stateful machine component.

    Produced by :meth:`Machine.snapshot` and consumed by
    :meth:`Machine.restore`.  Snapshots are sparse (only live predictor /
    cache state is copied) and immutable, so one checkpoint can seed any
    number of restores -- the trial-harness pattern of training a machine
    once and resetting it before every independent trial.
    """

    cbp: tuple
    btb: tuple
    ibp: tuple
    cache: tuple
    perf: PerfCounters
    #: Per logical thread: (phr value, ras snapshot, domain label).
    threads: Tuple[Tuple[int, tuple, str], ...]
    ibrs_enabled: bool
    #: PHR capacity (doublets) of the source machine, for restore checks.
    phr_capacity: int = 0
    #: Predictor-family id of the source machine.  :meth:`Machine.restore`
    #: rejects a snapshot whose family differs from the restoring
    #: machine's backend -- the table/history payloads above are
    #: family-shaped and silently mis-restoring them would corrupt state.
    predictor_model: str = "intel-cbp"

    def to_bytes(self) -> bytes:
        """Serialize to the versioned artifact format.

        The inverse of :meth:`from_bytes`; see
        :mod:`repro.cpu.serialize` for the format contract.  Round-trips
        are bit-identical (``from_bytes(to_bytes(s)) == s``), which is
        what lets the service layer's checkpoint store share snapshots
        across processes and worker restarts.
        """
        from repro.cpu.serialize import snapshot_to_bytes

        return snapshot_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MachineSnapshot":
        """Deserialize a :meth:`to_bytes` artifact.

        Raises :class:`repro.cpu.serialize.SnapshotFormatError` on a
        magic/version mismatch or a damaged payload.
        """
        from repro.cpu.serialize import snapshot_from_bytes

        return snapshot_from_bytes(data)


@dataclass
class MachineRunResult:
    """Outcome of one :meth:`Machine.run` invocation."""

    execution: ExecutionResult
    perf: PerfCounters
    phr_value: int

    @property
    def trace(self):
        """The dynamic branch trace of the run."""
        return self.execution.trace

    @property
    def state(self) -> CpuState:
        """Final architectural register state."""
        return self.execution.state


class _MachineHooks(CpuHooks):
    """Binds a running interpreter to the machine's microarchitecture."""

    def __init__(self, machine: "Machine", thread: ThreadContext,
                 speculate: bool):
        self.machine = machine
        self.thread = thread
        self.speculate = speculate
        #: Filled in by Machine.run before execution starts.
        self.interpreter: Optional[Interpreter] = None
        self.state: Optional[CpuState] = None
        self.memory: Optional[Memory] = None
        #: The wrong-path runner matching the selected engine
        #: (Interpreter.run_transient or run_transient_reference).
        self.run_transient = None

    def conditional_branch(self, pc: int, target: int, fallthrough: int,
                           taken: bool, resolve_latency: int) -> None:
        machine = self.machine
        mispredicted = machine._resolve_conditional(
            self.thread, pc, target, taken, resolve_latency,
            hooks=self if self.speculate else None,
            fallthrough=fallthrough,
        )
        del mispredicted  # counters already updated

    def unconditional_branch(self, pc: int, target: int,
                             kind: BranchKind, next_pc: int) -> None:
        self.machine._resolve_unconditional(self.thread, pc, target, kind,
                                            next_pc)

    def load(self, address: int, width: int) -> int:
        return self.machine.cache.access(address)

    def transient_load(self, address: int, width: int) -> int:
        return self.machine.cache.access(address)

    def store(self, address: int, width: int) -> None:
        self.machine.cache.access(address)

    def instruction_retired(self, pc: int) -> None:
        self.machine.perf.instructions += 1


class Machine:
    """One simulated physical core."""

    def __init__(self, config: MachineConfig = RAPTOR_LAKE):
        self.config = config
        #: The predictor family backing this machine (ARCHITECTURE.md §13).
        self.model = build_model(config)
        #: The family's direction predictor; the default ``intel-cbp``
        #: binds a :class:`~repro.cpu.cbp.ConditionalBranchPredictor`.
        self.cbp = self.model.build_direction_predictor()
        self.btb = BranchTargetBuffer()
        self.ibp = IndirectBranchPredictor()
        self.cache = DataCache(
            sets=config.cache_sets,
            ways=config.cache_ways,
            line_size=config.cache_line_size,
            hit_latency=config.cache_hit_latency,
            miss_latency=config.cache_miss_latency,
        )
        self.perf = PerfCounters()
        self.threads: List[ThreadContext] = [
            ThreadContext(
                thread_id=tid,
                phr=self.model.build_history(),
                ras=ReturnAddressStack(),
            )
            for tid in range(config.smt_threads)
        ]
        self.ibrs_enabled = False
        #: Optional per-commit observation point ``(pc, kind, taken)``,
        #: fired after every committed branch has fully updated the
        #: predictors (conditional branches report their architectural
        #: direction; non-conditional taken branches report their true
        #: :class:`BranchKind`, including CALL/RET).  ``None`` -- the
        #: default -- costs one
        #: attribute check per branch; the differential fuzzer hangs its
        #: invariant oracle and commit-stream capture here.
        self.branch_observer: Optional[
            Callable[[int, BranchKind, bool], None]] = None
        #: Machine-level share of the mutation epoch: bumped by whole-
        #: machine operations (:meth:`run`, :meth:`restore`, :meth:`touch`)
        #: whose component-level footprint would be awkward to enumerate.
        #: See :attr:`state_epoch`.
        self._mutation_epoch = 0

    # ------------------------------------------------------------------
    # mutation epoch
    # ------------------------------------------------------------------

    def touch(self) -> None:
        """Declare an out-of-band state mutation.

        Callers that poke component internals directly (tests, exotic
        experiments) bump the epoch through here so memoized digests of
        this machine's state (:func:`repro.service.store.machine_digest`)
        cannot serve a stale value.
        """
        self._mutation_epoch += 1

    @property
    def state_epoch(self) -> Optional[tuple]:
        """An identity token for the machine's current snapshot-visible state.

        Two reads returning equal tuples guarantee no state-changing
        method ran in between, so any value derived from the snapshot
        (its digest, above all) is still valid.  The converse is not
        promised: a restore to identical state still changes the epoch.

        Returns ``None`` -- disabling such memoization -- when a component
        has been replaced by one without a mutation counter (e.g. the
        hardened predictors of :mod:`repro.analysis.secure_predictors`
        wrap ``machine.cbp``); correctness degrades to a full recompute,
        never to a stale digest.
        """
        cbp_mutations = getattr(self.cbp, "mutations", None)
        if cbp_mutations is None:
            return None
        perf = self.perf
        return (
            self._mutation_epoch,
            cbp_mutations,
            self.btb.mutations,
            self.ibp.mutations,
            self.cache.mutations,
            (perf.instructions, perf.conditional_branches,
             perf.taken_branches, perf.returns, perf.indirect_branches),
            tuple((context.phr.version, context.ras.mutations,
                   context.domain) for context in self.threads),
            self.ibrs_enabled,
        )

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------

    def phr(self, thread: int = 0) -> Any:
        """The history register of logical thread ``thread``."""
        return self.threads[thread].phr

    def thread(self, thread: int = 0) -> ThreadContext:
        """The context of logical thread ``thread``."""
        return self.threads[thread]

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        """Checkpoint all microarchitectural state as an immutable value.

        Covers the CBP (base predictor + tagged PHTs), BTB, IBP, data
        cache, perf counters, and every thread's PHR/RAS/domain -- the
        complete machine state an attack can observe or perturb.  Copies
        are sparse (only populated entries), so a snapshot of a trained
        machine costs its live state, not its configured capacity.
        Architectural state (:class:`CpuState`, :class:`Memory`) is
        per-run and deliberately out of scope.
        """
        return MachineSnapshot(
            cbp=self.cbp.snapshot(),
            btb=self.btb.snapshot(),
            ibp=self.ibp.snapshot(),
            cache=self.cache.snapshot(),
            perf=self.perf.snapshot(),
            threads=tuple(
                (context.phr.snapshot(), context.ras.snapshot(),
                 context.domain)
                for context in self.threads
            ),
            ibrs_enabled=self.ibrs_enabled,
            phr_capacity=self.config.phr_capacity,
            predictor_model=self.model.model_id,
        )

    def restore(self, snap: MachineSnapshot) -> None:
        """Restore a :meth:`snapshot` taken on this machine.

        Restores are diff-based: component state that still matches the
        checkpoint is left untouched, so resetting after a light
        perturbation (one poisoned PHT entry, a handful of cache lines)
        costs roughly the perturbation.  The same snapshot may be
        restored any number of times; repeated trials against a trained
        machine reset through here instead of re-provisioning and
        re-profiling from scratch.
        """
        if snap.predictor_model != self.model.model_id:
            raise SnapshotFormatError(
                f"snapshot is for predictor model "
                f"{snap.predictor_model!r}, this machine runs "
                f"{self.model.model_id!r}"
            )
        if len(snap.threads) != len(self.threads):
            raise ValueError(
                "snapshot is for a machine with a different thread count"
            )
        if snap.phr_capacity and snap.phr_capacity != self.config.phr_capacity:
            raise ValueError(
                f"snapshot is for a {snap.phr_capacity}-doublet PHR, "
                f"this machine has {self.config.phr_capacity}"
            )
        self._mutation_epoch += 1
        self.cbp.restore(snap.cbp)
        self.btb.restore(snap.btb)
        self.ibp.restore(snap.ibp)
        self.cache.restore(snap.cache)
        self.perf.restore(snap.perf)
        for context, (phr_value, ras_snap, domain) in zip(self.threads,
                                                          snap.threads):
            context.phr.restore(phr_value)
            context.ras.restore(ras_snap)
            context.domain = domain
        self.ibrs_enabled = snap.ibrs_enabled

    # ------------------------------------------------------------------
    # functional branch entry points (fast path for the primitives)
    # ------------------------------------------------------------------

    def record_taken_branch(self, pc: int, target: int, thread: int = 0,
                            kind: BranchKind = BranchKind.JUMP) -> None:
        """Commit one taken non-conditional branch.

        Unconditional direct branches interact with the BTB and the PHR but
        *not* with the PHTs -- the property both the ``Shift_PHR`` macro
        and the Section 10 PHR-flush mitigation rely on.
        """
        context = self.threads[thread]
        self.btb.update(pc, target)
        if kind is BranchKind.INDIRECT:
            predicted = self.ibp.predict(pc, context.phr)
            self.perf.indirect_branches += 1
            if predicted != target:
                self.perf.indirect_mispredictions += 1
            self.ibp.update(pc, context.phr, target)
        context.phr.on_taken(pc, target)
        self.perf.taken_branches += 1
        observer = self.branch_observer
        if observer is not None:
            observer(pc, kind, True)

    def observe_conditional(self, pc: int, target: int, taken: bool,
                            thread: int = 0) -> bool:
        """Commit one conditional branch; return whether it mispredicted.

        This is the exact commit path of :meth:`run` minus transient
        execution (which a bare predict/update experiment does not need).
        """
        context = self.threads[thread]
        return self._resolve_conditional(context, pc, target, taken,
                                         resolve_latency=0, hooks=None,
                                         fallthrough=pc + 4)

    def _resolve_conditional(
        self,
        context: ThreadContext,
        pc: int,
        target: int,
        taken: bool,
        resolve_latency: int,
        hooks: Optional[_MachineHooks],
        fallthrough: int,
    ) -> bool:
        prediction = self.cbp.predict(pc, context.phr)
        mispredicted = prediction.taken != taken
        self.perf.record_conditional(pc, mispredicted)

        if mispredicted and hooks is not None and hooks.run_transient is not None:
            budget = self._speculation_budget(resolve_latency)
            wrong_path_pc = target if prediction.taken else fallthrough
            self.perf.speculation_windows += 1
            executed = hooks.run_transient(
                wrong_path_pc, hooks.state, hooks.memory, budget
            )
            self.perf.transient_instructions += executed

        self.cbp.update(pc, context.phr, taken, prediction)
        if taken:
            self.btb.update(pc, target)
            self.perf.taken_branches += 1
        # The family's history discipline decides what a committed
        # conditional records (Intel: taken only; M1: both directions;
        # tournament GHR: the direction bit) -- after the predictor has
        # trained on the lookup-time history, before the observer fires.
        context.phr.on_conditional(pc, target, taken)
        observer = self.branch_observer
        if observer is not None:
            observer(pc, BranchKind.CONDITIONAL, taken)
        return mispredicted

    def _resolve_unconditional(self, context: ThreadContext, pc: int,
                               target: int, kind: BranchKind,
                               next_pc: Optional[int] = None) -> None:
        if kind is BranchKind.CALL:
            # The RAS holds the *real* return address, pc + instruction
            # size, threaded through the unconditional-branch hook --
            # a hardcoded pc + 4 would mispredict every return from a
            # variable-size Call encoding.
            context.ras.push(pc + 4 if next_pc is None else next_pc)
        elif kind is BranchKind.RET:
            predicted = context.ras.pop()
            self.perf.returns += 1
            if predicted is None:
                # Empty RAS: the return has no predicted target at all.
                # That is a misprediction by definition, counted under
                # both the indirect-misprediction total and a dedicated
                # underflow counter so it is never silent.
                self.perf.ras_underflows += 1
                self.perf.indirect_mispredictions += 1
            elif predicted != target:
                self.perf.indirect_mispredictions += 1
        # The true kind flows through for the observer's benefit; the
        # predictors themselves only distinguish INDIRECT (IBP traffic)
        # from everything else, so CALL/RET train exactly like JUMP.
        self.record_taken_branch(pc, target, thread=context.thread_id,
                                 kind=kind)

    def _speculation_budget(self, resolve_latency: int) -> int:
        config = self.config
        widened = resolve_latency // config.spec_cycles_per_instruction
        return min(config.spec_window_max, config.spec_window_base + widened)

    # ------------------------------------------------------------------
    # program execution
    # ------------------------------------------------------------------

    def run(
        self,
        program: Program,
        thread: int = 0,
        state: Optional[CpuState] = None,
        memory: Optional[Memory] = None,
        entry: Optional[int] = None,
        max_instructions: int = 2_000_000,
        speculate: bool = True,
        trace: str = "full",
        engine: str = "fast",
        on_limit: str = "raise",
    ) -> MachineRunResult:
        """Run ``program`` on logical thread ``thread``.

        Returns the architectural result plus the perf-counter delta for
        this run and the thread's final PHR value.  ``trace`` selects how
        much of the branch trace is materialised
        (``'full'``/``'branches'``/``'none'``, see
        :meth:`repro.isa.interpreter.Interpreter.run`).  ``engine`` picks
        the predecoded fast path (``'fast'``, the default) or the retained
        dispatch-loop twin (``'reference'``); the two are pinned
        bit-identical by tests, so ``'reference'`` exists for equivalence
        checks and as the speedup baseline of
        ``benchmarks/bench_simulator_throughput.py``.  ``on_limit='stop'``
        makes the instruction budget a pause point instead of an error:
        the run returns ``halted=False`` with ``execution.next_pc`` set,
        and can be resumed by calling :meth:`run` again with the same
        state/memory and ``entry=execution.next_pc`` (the machine-side
        predictor state simply carries over).
        """
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        # Runs mutate state through too many paths (transient loads, perf
        # side counters) to rely on component epochs alone.
        self._mutation_epoch += 1
        context = self.threads[thread]
        hooks = _MachineHooks(self, context, speculate)
        interpreter = Interpreter(program, hooks)
        if state is None:
            state = CpuState()
        if memory is None:
            memory = Memory()
        hooks.interpreter = interpreter
        hooks.state = state
        hooks.memory = memory
        hooks.run_transient = (interpreter.run_transient if engine == "fast"
                               else interpreter.run_transient_reference)

        before = self.perf.snapshot()
        if engine == "fast":
            execution = interpreter.run(state=state, memory=memory,
                                        entry=entry,
                                        max_instructions=max_instructions,
                                        trace=trace, on_limit=on_limit)
        else:
            execution = interpreter.run_reference(
                state=state, memory=memory, entry=entry,
                max_instructions=max_instructions, on_limit=on_limit)
        return MachineRunResult(
            execution=execution,
            perf=self.perf.delta(before),
            phr_value=context.phr.value,
        )

    # ------------------------------------------------------------------
    # domain transitions and mitigation knobs
    # ------------------------------------------------------------------

    def inject_branch_sequence(
        self,
        branches: Iterable[Tuple[int, int, bool, bool]],
        thread: int = 0,
    ) -> int:
        """Commit a canned branch sequence ``(pc, target, conditional, taken)``.

        Used to model the branches executed by kernel syscall entry/exit
        stubs and SGX enclave transitions (Section 7).  Returns the number
        of *taken* branches injected (the PHR-visible count).
        """
        taken_count = 0
        for pc, target, conditional, taken in branches:
            if conditional:
                self.observe_conditional(pc, target, taken, thread=thread)
            elif taken:
                self.record_taken_branch(pc, target, thread=thread)
            if taken:
                taken_count += 1
        return taken_count

    def set_domain(self, thread: int, domain: str) -> None:
        """Switch logical thread ``thread`` into security domain ``domain``.

        The domain label is informational on the paper's machines (the
        whole point of Section 7 is that the CBP carries state *across*
        user/kernel and user/SGX transitions), but the predictor family
        gets a veto:
        :meth:`repro.cpu.model.PredictorModel.on_domain_switch` runs on
        every actual transition, letting a family model
        domain-partitioned or domain-flushed predictor state.  All
        built-in families inherit the no-op default.
        """
        context = self.threads[thread]
        old_domain = context.domain
        if domain == old_domain:
            return
        context.domain = domain
        self.model.on_domain_switch(self, context, old_domain, domain)

    def ibpb(self) -> None:
        """Indirect Branch Predictor Barrier.

        Per Section 7.4, IBPB flushes indirect-branch prediction state and
        nothing else: the PHR and the PHTs survive, which is exactly why
        the paper's primitives defeat it.
        """
        self.ibp.barrier()

    def set_ibrs(self, enabled: bool) -> None:
        """Indirect Branch Restricted Speculation on/off.

        IBRS restricts *indirect* target speculation across privilege
        modes; like IBPB it does not flush or partition the CBP.
        """
        self.ibrs_enabled = enabled
        self.ibp.restricted = enabled

    def flush_cbp(self) -> None:
        """Flush base predictor and PHTs (Section 10 mitigation)."""
        self.cbp.flush()

    def clear_phr(self, thread: int = 0) -> None:
        """Zero the PHR of ``thread`` (Section 10 mitigation semantics)."""
        self.threads[thread].phr.clear()
