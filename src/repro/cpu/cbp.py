"""The conditional branch predictor: base predictor + tagged PHTs.

Prediction follows the TAGE discipline the paper attributes to Intel's
CBP: the matching tagged table with the *longest* history provides the
prediction; the base predictor is the fallback.  On a misprediction an
entry is allocated in the next-longer table so the predictor can learn
history-correlated patterns -- exactly the behaviour the Read PHR
primitive's train/test pair exploits (it converges to ~0% mispredictions
when two distinct PHR values disambiguate a random branch, and stays at
~50% when the PHR values collide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cpu.pht import BasePredictor, TaggedEntry, TaggedTable
from repro.cpu.phr import PathHistoryRegister


@dataclass(slots=True)
class Prediction:
    """The outcome of a CBP lookup.

    ``provider`` is the 1-based tagged-table number, or 0 for the base
    predictor.  ``entry`` is the providing tagged entry when applicable.
    ``alternate`` is the prediction the next-shorter component would have
    made (used for the usefulness heuristic).

    ``keys`` carries each tagged table's ``(index, tag)`` lookup key from
    the predict-time probe (tag ``None`` when the probe missed on an
    empty set), stamped with the PHR identity and version they were
    computed against.  :meth:`ConditionalBranchPredictor.update` reuses
    them -- a branch is hashed once per commit, not twice.
    """

    taken: bool
    provider: int
    entry: Optional[TaggedEntry]
    alternate: bool
    keys: Tuple[Tuple[int, Optional[int]], ...] = ()
    phr: Optional[PathHistoryRegister] = field(default=None, repr=False)
    phr_version: int = -1


class ConditionalBranchPredictor:
    """Base predictor plus N tagged tables sharing one update policy."""

    def __init__(
        self,
        history_lengths: Sequence[int],
        sets: int = 512,
        ways: int = 4,
        counter_bits: int = 3,
        tag_bits: int = 11,
        base_index_bits: int = 13,
        pc_index_bit: int = 5,
    ):
        if list(history_lengths) != sorted(history_lengths):
            raise ValueError("history lengths must be non-decreasing")
        self.counter_bits = counter_bits
        self.base = BasePredictor(index_bits=base_index_bits,
                                  counter_bits=counter_bits)
        self.tables: List[TaggedTable] = [
            TaggedTable(
                history_doublets=length,
                sets=sets,
                ways=ways,
                counter_bits=counter_bits,
                tag_bits=tag_bits,
                pc_index_bit=pc_index_bit,
            )
            for length in history_lengths
        ]
        #: Test-only fault-injection point: when set, :meth:`update` trains
        #: toward ``train_fault(pc, taken)`` instead of the architectural
        #: outcome (prediction and misprediction accounting still use the
        #: real direction).  The differential fuzzer's mutation-smoke test
        #: installs a deliberate perturbation here and asserts the fuzzer
        #: finds it; production code must never set this.
        self.train_fault: Optional[object] = None
        #: Own share of the mutation epoch (see :attr:`DataCache.mutations`).
        #: ``update`` writes provider counters and usefulness bits in place
        #: -- mutations the component counters cannot see -- so the CBP
        #: keeps its own count and :attr:`mutations` aggregates all three.
        self._mutations = 0

    @property
    def mutations(self) -> int:
        """Aggregate mutation epoch over the CBP and its components."""
        return (self._mutations + self.base.mutations
                + sum(table.mutations for table in self.tables))

    # ----- prediction -----------------------------------------------------

    def predict(self, pc: int, phr: PathHistoryRegister) -> Prediction:
        """Look up ``(pc, phr)`` and return the provided prediction."""
        taken = alternate = self.base.predict(pc)
        provider = 0
        entry: Optional[TaggedEntry] = None
        keys = []
        for number, table in enumerate(self.tables, start=1):
            found, index, tag = table.probe(pc, phr)
            keys.append((index, tag))
            if found is not None:
                provider = number
                entry = found
                alternate = taken
                taken = found.counter.value >= found.counter.threshold
        return Prediction(taken=taken, provider=provider, entry=entry,
                          alternate=alternate, keys=tuple(keys), phr=phr,
                          phr_version=phr.version)

    # ----- training ---------------------------------------------------------

    def update(self, pc: int, phr: PathHistoryRegister, taken: bool,
               prediction: Optional[Prediction] = None) -> None:
        """Train the predictor with a resolved branch outcome.

        ``prediction`` should be the object returned by :meth:`predict` for
        this branch; if omitted -- or stale, i.e. the PHR mutated since
        the lookup so its stashed table keys no longer apply -- it is
        recomputed (the lookup is deterministic, so this is safe).
        """
        self._mutations += 1
        if (prediction is None or prediction.phr is not phr
                or prediction.phr_version != phr.version):
            prediction = self.predict(pc, phr)
        if self.train_fault is not None:
            taken = bool(self.train_fault(pc, taken))

        # Train the provider.
        if prediction.entry is not None:
            prediction.entry.counter.update(taken)
            if (prediction.taken == taken
                    and prediction.taken != prediction.alternate
                    and prediction.entry.useful < 3):
                prediction.entry.useful += 1
        else:
            self.base.update(pc, taken)

        # The base predictor also trains when a weak tagged entry provided;
        # this keeps it a useful fallback (and mirrors TAGE's alt-update).
        if prediction.entry is not None and not prediction.entry.counter.is_saturated:
            self.base.update(pc, taken)

        # Allocate on misprediction in the next-longer table, reusing the
        # predict-time lookup key instead of rehashing.
        if prediction.taken != taken and prediction.provider < len(self.tables):
            position = prediction.provider
            keys = prediction.keys
            key = keys[position] if position < len(keys) else None
            self.tables[position].allocate(pc, phr, taken, key=key)

    def observe(self, pc: int, phr: PathHistoryRegister, taken: bool) -> bool:
        """Predict and immediately train; return whether it mispredicted.

        This is the one-call form used by attack loops that only need the
        misprediction signal.
        """
        prediction = self.predict(pc, phr)
        self.update(pc, phr, taken, prediction)
        return prediction.taken != taken

    # ----- maintenance ---------------------------------------------------------

    def flush(self) -> None:
        """Drop all predictor state (the Section 10 PHT-flush mitigation)."""
        self._mutations += 1
        self.base.flush()
        for table in self.tables:
            table.flush()

    def snapshot(self) -> tuple:
        """Sparse checkpoint of the base predictor and every tagged table."""
        return (self.base.snapshot(),
                tuple(table.snapshot() for table in self.tables))

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot` (diff-based, see the components)."""
        self._mutations += 1
        base_snap, table_snaps = snap
        self.base.restore(base_snap)
        for table, table_snap in zip(self.tables, table_snaps):
            table.restore(table_snap)

    def populated_entries(self) -> int:
        """Total live entries across base and tagged tables."""
        return self.base.populated_entries() + sum(
            table.populated_entries() for table in self.tables
        )
