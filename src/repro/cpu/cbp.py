"""The conditional branch predictor: base predictor + tagged PHTs.

Prediction follows the TAGE discipline the paper attributes to Intel's
CBP: the matching tagged table with the *longest* history provides the
prediction; the base predictor is the fallback.  On a misprediction an
entry is allocated in the next-longer table so the predictor can learn
history-correlated patterns -- exactly the behaviour the Read PHR
primitive's train/test pair exploits (it converges to ~0% mispredictions
when two distinct PHR values disambiguate a random branch, and stays at
~50% when the PHR values collide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.pht import BasePredictor, TaggedEntry, TaggedTable
from repro.cpu.phr import PathHistoryRegister


@dataclass
class Prediction:
    """The outcome of a CBP lookup.

    ``provider`` is the 1-based tagged-table number, or 0 for the base
    predictor.  ``entry`` is the providing tagged entry when applicable.
    ``alternate`` is the prediction the next-shorter component would have
    made (used for the usefulness heuristic).
    """

    taken: bool
    provider: int
    entry: Optional[TaggedEntry]
    alternate: bool


class ConditionalBranchPredictor:
    """Base predictor plus N tagged tables sharing one update policy."""

    def __init__(
        self,
        history_lengths: Sequence[int],
        sets: int = 512,
        ways: int = 4,
        counter_bits: int = 3,
        tag_bits: int = 11,
        base_index_bits: int = 13,
        pc_index_bit: int = 5,
    ):
        if list(history_lengths) != sorted(history_lengths):
            raise ValueError("history lengths must be non-decreasing")
        self.counter_bits = counter_bits
        self.base = BasePredictor(index_bits=base_index_bits,
                                  counter_bits=counter_bits)
        self.tables: List[TaggedTable] = [
            TaggedTable(
                history_doublets=length,
                sets=sets,
                ways=ways,
                counter_bits=counter_bits,
                tag_bits=tag_bits,
                pc_index_bit=pc_index_bit,
            )
            for length in history_lengths
        ]

    # ----- prediction -----------------------------------------------------

    def predict(self, pc: int, phr: PathHistoryRegister) -> Prediction:
        """Look up ``(pc, phr)`` and return the provided prediction."""
        provider = 0
        entry: Optional[TaggedEntry] = None
        predictions = [self.base.predict(pc)]
        for number, table in enumerate(self.tables, start=1):
            found = table.lookup(pc, phr)
            if found is not None:
                provider = number
                entry = found
                predictions.append(found.counter.prediction)
        taken = predictions[-1]
        alternate = predictions[-2] if len(predictions) > 1 else predictions[-1]
        return Prediction(taken=taken, provider=provider, entry=entry,
                          alternate=alternate)

    # ----- training ---------------------------------------------------------

    def update(self, pc: int, phr: PathHistoryRegister, taken: bool,
               prediction: Optional[Prediction] = None) -> None:
        """Train the predictor with a resolved branch outcome.

        ``prediction`` should be the object returned by :meth:`predict` for
        this branch; if omitted it is recomputed (the lookup is
        deterministic, so this is safe).
        """
        if prediction is None:
            prediction = self.predict(pc, phr)

        # Train the provider.
        if prediction.entry is not None:
            prediction.entry.counter.update(taken)
            if (prediction.taken == taken
                    and prediction.taken != prediction.alternate
                    and prediction.entry.useful < 3):
                prediction.entry.useful += 1
        else:
            self.base.update(pc, taken)

        # The base predictor also trains when a weak tagged entry provided;
        # this keeps it a useful fallback (and mirrors TAGE's alt-update).
        if prediction.entry is not None and not prediction.entry.counter.is_saturated:
            self.base.update(pc, taken)

        # Allocate on misprediction in the next-longer table.
        if prediction.taken != taken and prediction.provider < len(self.tables):
            self.tables[prediction.provider].allocate(pc, phr, taken)

    def observe(self, pc: int, phr: PathHistoryRegister, taken: bool) -> bool:
        """Predict and immediately train; return whether it mispredicted.

        This is the one-call form used by attack loops that only need the
        misprediction signal.
        """
        prediction = self.predict(pc, phr)
        self.update(pc, phr, taken, prediction)
        return prediction.taken != taken

    # ----- maintenance ---------------------------------------------------------

    def flush(self) -> None:
        """Drop all predictor state (the Section 10 PHT-flush mitigation)."""
        self.base.flush()
        for table in self.tables:
            table.flush()

    def populated_entries(self) -> int:
        """Total live entries across base and tagged tables."""
        return self.base.populated_entries() + sum(
            table.populated_entries() for table in self.tables
        )
