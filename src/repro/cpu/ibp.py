"""Indirect branch predictor (Figure 1).

The IBP predicts indirect-jump targets from the branch address *and* the
PHR.  It matters to this reproduction for one reason: Intel's IBPB/IBRS
mitigations act on the IBP -- and the paper's Section 7.4 finding is that
they leave the CBP (PHR and PHTs) completely untouched.  The boundary
benchmarks demonstrate that asymmetry against this model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cpu.phr import PathHistoryRegister
from repro.utils.bits import bits, fold_xor


class IndirectBranchPredictor:
    """A tagged target cache keyed by (PC, folded PHR)."""

    def __init__(self, index_bits: int = 9, history_bits: int = 32,
                 max_entries: int = 4096):
        self.index_bits = index_bits
        self.history_bits = history_bits
        self.max_entries = max_entries
        self._entries: Dict[Tuple[int, int], int] = {}
        #: Set by IBRS: predictions made in a lower privilege mode are not
        #: consumed in a higher one.
        self.restricted = False
        #: Mutation epoch (see :attr:`DataCache.mutations`).
        self.mutations = 0

    def _key(self, pc: int, phr: PathHistoryRegister) -> Tuple[int, int]:
        history = fold_xor(phr.low_bits(self.history_bits),
                           self.history_bits, self.index_bits)
        return (bits(pc, 15, 0), history)

    def predict(self, pc: int, phr: PathHistoryRegister) -> Optional[int]:
        """Predicted target for the indirect branch at ``pc``."""
        return self._entries.get(self._key(pc, phr))

    def update(self, pc: int, phr: PathHistoryRegister, target: int) -> None:
        """Record a resolved indirect target."""
        self.mutations += 1
        if len(self._entries) >= self.max_entries:
            # Evict an arbitrary (oldest-inserted) entry.
            self._entries.pop(next(iter(self._entries)))
        self._entries[self._key(pc, phr)] = target

    def barrier(self) -> None:
        """IBPB: prevent pre-barrier software from steering post-barrier
        indirect predictions -- modelled as a full flush of the IBP."""
        self.mutations += 1
        self._entries.clear()

    def flush(self) -> None:
        """Drop all entries."""
        self.mutations += 1
        self._entries.clear()

    def populated_entries(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> tuple:
        """Checkpoint: target map (insertion order matters for eviction)."""
        return tuple(self._entries.items()), self.restricted

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot`."""
        self.mutations += 1
        entries, self.restricted = snap
        if len(self._entries) != len(entries) or (
                tuple(self._entries.items()) != entries):
            self._entries = dict(entries)
