"""Machine configurations for the paper's target processors (Table 1).

========  ==================  ===============  ==========
machine   model name          microarch        PHR size
========  ==================  ===============  ==========
1         Core i9-13900KS     Raptor Lake      194
2         Core i9-12900       Alder Lake       194
3         Core i7-6770HQ      Skylake          93
========  ==================  ===============  ==========

Observation 1 of the paper is that Raptor Lake's PHR structure is
identical to Alder Lake's; the two presets therefore differ only in their
identification strings, and a benchmark asserts the behavioural identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cpu.pht import default_history_lengths


@dataclass(frozen=True)
class MachineConfig:
    """Static parameters of a simulated machine."""

    name: str
    model_name: str
    microarchitecture: str
    #: Predictor family backend (a :mod:`repro.cpu.model` registry id).
    #: ``intel-cbp`` is the paper's reverse-engineered CBP and the
    #: default; ``m1-phr`` and ``gshare-tournament`` select the other
    #: built-in families.  Every profile digest and snapshot artifact
    #: carries this id, so configs differing only here never share
    #: checkpoints or worker shards.
    predictor_model: str = "intel-cbp"
    #: Taken branches the PHR records (doublets).
    phr_capacity: int = 194
    #: History window (in doublets) of each tagged PHT.
    pht_history_lengths: Tuple[int, ...] = (34, 66, 194)
    pht_sets: int = 512
    pht_ways: int = 4
    #: Observation 2: 3-bit saturating counters.
    counter_bits: int = 3
    pht_tag_bits: int = 11
    #: The single PC bit mixed into the PHT index (PC[5] on Alder/Raptor
    #: Lake, PC[4] on some older parts).
    pc_index_bit: int = 5
    base_index_bits: int = 13
    #: SMT: logical threads per physical core, each with a private PHR.
    smt_threads: int = 2
    #: Speculation: instructions the wrong path may run when the branch
    #: resolves quickly, and the cap when resolution is delayed by a cache
    #: miss (the Section 9 `clflush` of the round count).
    spec_window_base: int = 8
    spec_window_max: int = 192
    #: Cycles-per-instruction divisor converting resolve latency to window.
    spec_cycles_per_instruction: int = 2
    cache_sets: int = 1024
    cache_ways: int = 8
    cache_line_size: int = 64
    cache_hit_latency: int = 4
    cache_miss_latency: int = 300
    #: Latency threshold above which a reload is classified as a miss by
    #: the attacker's flush+reload timer.
    reload_threshold: int = 100

    def __post_init__(self) -> None:
        if self.phr_capacity < 8:
            raise ValueError("PHR capacity too small to hold a footprint")
        if any(length > self.phr_capacity for length in self.pht_history_lengths):
            raise ValueError("PHT history window exceeds PHR capacity")

    def describe(self) -> Dict[str, str]:
        """Row data for the Table 1 benchmark."""
        return {
            "Machine": self.name,
            "Model Name": self.model_name,
            "uArch.": self.microarchitecture,
            "PHR size": str(self.phr_capacity),
            "PHT tables": "x".join(str(l) for l in self.pht_history_lengths),
        }


def _config(name: str, model: str, microarch: str, phr_capacity: int,
            pc_index_bit: int) -> MachineConfig:
    return MachineConfig(
        name=name,
        model_name=model,
        microarchitecture=microarch,
        phr_capacity=phr_capacity,
        pht_history_lengths=default_history_lengths(phr_capacity),
        pc_index_bit=pc_index_bit,
    )


#: machine 1 of Table 1.
RAPTOR_LAKE = _config("machine 1", "Core i9-13900KS", "Raptor Lake", 194, 5)
#: machine 2 of Table 1.
ALDER_LAKE = _config("machine 2", "Core i9-12900", "Alder Lake", 194, 5)
#: machine 3 of Table 1.
SKYLAKE = _config("machine 3", "Core i7-6770HQ", "Skylake", 93, 4)

#: All Table 1 targets, in paper order.
TARGET_MACHINES: Tuple[MachineConfig, ...] = (RAPTOR_LAKE, ALDER_LAKE, SKYLAKE)

#: The M1 Firestorm-style lab machine (arXiv 2502.10719 family; see
#: :mod:`repro.cpu.m1` for the modeling notes).  86 doublets: the M1
#: register records both directions, so it fills roughly twice as fast
#: per retired conditional as the Intel PHR.
FIRESTORM_M1 = MachineConfig(
    name="lab M1",
    model_name="Apple M1 (Firestorm)",
    microarchitecture="Firestorm",
    predictor_model="m1-phr",
    phr_capacity=86,
    pht_history_lengths=default_history_lengths(86),
    pc_index_bit=5,
)

#: The gshare/tournament baseline lab machine (Assassyn-CPU family; see
#: :mod:`repro.cpu.tournament`).  The PHR-geometry fields are inert for
#: this family -- its history is a 16-bit GHR of direction bits.
TOURNAMENT_BASELINE = MachineConfig(
    name="lab tournament",
    model_name="Assassyn tournament core",
    microarchitecture="tournament baseline",
    predictor_model="gshare-tournament",
)

#: One representative machine per predictor family -- the backend axis
#: of the cross-architecture result matrix (benchmarks, conformance
#: suite, per-backend fuzz arms).
PREDICTOR_LAB_MACHINES: Tuple[MachineConfig, ...] = (
    RAPTOR_LAKE, FIRESTORM_M1, TOURNAMENT_BASELINE,
)
