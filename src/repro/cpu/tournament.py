"""The gshare/tournament predictor family (Assassyn-CPU baseline).

`/root/related/konpaku-ming__Assassyn-CPU` sketches the classic
tournament organisation this family models: a *local* bimodal table
indexed by the branch PC, a *gshare* table indexed by the PC XORed with
a folded global history register (GHR), and a PC-indexed *chooser* that
learns per-branch which component to trust.  It is the textbook
pre-TAGE baseline -- exactly the contrast the cross-architecture matrix
wants next to the paper's Intel CBP: shorter history, no tagging, no
allocation cascade, and a *direction* history (taken/not-taken bits)
instead of a *path* history (footprint folds).

Attack-relevant semantics, stated up front:

* The GHR records the outcome of **every** conditional branch -- taken
  and not-taken alike -- and ignores unconditional branches entirely.
  A `Shift_PHR`-style unconditional-jump ladder therefore does *not*
  scrub this family's history; only retired conditionals move it.
* Aliasing is unmitigated (no tags): two branches whose
  ``PC ^ fold(GHR)`` collide share a gshare counter, which is this
  family's analogue of the PHT-collision channel the paper's Read/Write
  primitives exploit.

All three tables reuse :class:`~repro.cpu.pht.BasePredictor` (lazily
populated counters, sparse snapshots, mutation epochs), fed a
component-specific index in place of a raw PC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.model import PredictorModel, register_model
from repro.cpu.pht import BasePredictor
from repro.utils.bits import fold_xor, mask

#: Width of the global history register in direction bits.
GHR_BITS = 16

#: Index width of the gshare table (2^13 counters, matching the Intel
#: base predictor's footprint so the families' table budgets are
#: comparable in the matrix benchmarks).
GSHARE_INDEX_BITS = 13

#: Tournament counters are the classic 2-bit saturating kind.
TOURNAMENT_COUNTER_BITS = 2


class GlobalHistoryRegister:
    """A ``capacity``-bit shift register of conditional outcomes.

    Implements the :mod:`repro.cpu.model` history protocol.  The
    ``capacity`` is counted in *bits* (one direction bit per retired
    conditional), so :attr:`bits` equals :attr:`capacity` -- unlike the
    doublet-granular PHR where ``bits == 2 * capacity``.
    """

    def __init__(self, capacity: int = GHR_BITS, value: int = 0):
        if capacity < 1:
            raise ValueError(f"GHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._mask = mask(capacity)
        self._value = value & self._mask
        #: Monotonic mutation counter (the machine's state epoch and the
        #: predictor's prediction-staleness check both key on it).
        self.version = 0

    # ----- inspection -----------------------------------------------------

    @property
    def value(self) -> int:
        """The raw register contents as a ``capacity``-bit integer."""
        return self._value

    @property
    def bits(self) -> int:
        """Total width in bits (== :attr:`capacity` for a GHR)."""
        return self.capacity

    def low_bits(self, count: int) -> int:
        """The low ``count`` bits (used by gshare/IBP index hashes)."""
        return self._value & mask(count)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GlobalHistoryRegister):
            return (self.capacity, self._value) == (other.capacity,
                                                    other._value)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.capacity, self._value))

    def __repr__(self) -> str:
        return (f"GlobalHistoryRegister(capacity={self.capacity}, "
                f"value={self._value:#x})")

    # ----- machine commit hooks -------------------------------------------

    def on_conditional(self, branch_address: int, target_address: int,
                       taken: bool) -> None:
        """Shift in the direction bit of a retired conditional branch."""
        self._value = ((self._value << 1) | int(taken)) & self._mask
        self.version += 1

    def on_taken(self, branch_address: int, target_address: int) -> None:
        """Taken non-conditional branches do not move a classic GHR."""

    # ----- mutation -------------------------------------------------------

    def clear(self) -> None:
        """Reset to all zeros (this family's history-flush mitigation)."""
        self._value = 0
        self.version += 1

    def set_value(self, value: int) -> None:
        """Force the raw register contents (attack-side history seeding)."""
        self._value = value & self._mask
        self.version += 1

    def copy(self) -> "GlobalHistoryRegister":
        """An independent copy."""
        return GlobalHistoryRegister(self.capacity, self._value)

    # ----- checkpointing --------------------------------------------------

    def snapshot(self) -> int:
        """Checkpoint: the raw register value (the GHR's only state)."""
        return self._value

    def restore(self, snap: int) -> None:
        """Restore a :meth:`snapshot` (version bumps like the PHR's)."""
        self._value = snap & self._mask
        self.version += 1


@dataclass(slots=True)
class TournamentPrediction:
    """The outcome of a tournament lookup.

    Carries both component votes and the chooser's pick so
    :meth:`TournamentPredictor.update` can train the chooser toward
    whichever component was right -- without re-probing.  ``history`` /
    ``history_version`` stamp the GHR state of the lookup; a stale
    prediction is recomputed on update, mirroring
    :class:`~repro.cpu.cbp.Prediction`.
    """

    taken: bool
    local_taken: bool
    gshare_taken: bool
    chose_gshare: bool
    gshare_index: int
    history: Optional[GlobalHistoryRegister] = field(default=None, repr=False)
    history_version: int = -1


class TournamentPredictor:
    """Local bimodal + gshare + chooser, one update policy."""

    def __init__(self, ghr_bits: int = GHR_BITS,
                 local_index_bits: int = 13,
                 gshare_index_bits: int = GSHARE_INDEX_BITS,
                 counter_bits: int = TOURNAMENT_COUNTER_BITS):
        self.ghr_bits = ghr_bits
        self.gshare_index_bits = gshare_index_bits
        self.local = BasePredictor(index_bits=local_index_bits,
                                   counter_bits=counter_bits)
        self.gshare = BasePredictor(index_bits=gshare_index_bits,
                                    counter_bits=counter_bits)
        #: Chooser counters: value >= threshold means "trust gshare".
        self.chooser = BasePredictor(index_bits=local_index_bits,
                                     counter_bits=counter_bits)
        #: Own share of the mutation epoch (chooser training writes
        #: counters the component epochs already see, but the aggregate
        #: keeps the accounting uniform with the CBP's).
        self._mutations = 0

    @property
    def mutations(self) -> int:
        """Aggregate mutation epoch over all three tables."""
        return (self._mutations + self.local.mutations
                + self.gshare.mutations + self.chooser.mutations)

    def gshare_index(self, pc: int, history: GlobalHistoryRegister) -> int:
        """The gshare table index: folded GHR XOR branch PC."""
        folded = fold_xor(history.low_bits(self.ghr_bits), self.ghr_bits,
                          self.gshare_index_bits)
        return (pc ^ folded) & mask(self.gshare_index_bits)

    # ----- prediction -----------------------------------------------------

    def predict(self, pc: int,
                history: GlobalHistoryRegister) -> TournamentPrediction:
        """Look up ``(pc, history)`` and return the chosen prediction."""
        local_taken = self.local.predict(pc)
        index = self.gshare_index(pc, history)
        gshare_taken = self.gshare.predict(index)
        chose_gshare = self.chooser.predict(pc)
        return TournamentPrediction(
            taken=gshare_taken if chose_gshare else local_taken,
            local_taken=local_taken,
            gshare_taken=gshare_taken,
            chose_gshare=chose_gshare,
            gshare_index=index,
            history=history,
            history_version=history.version,
        )

    # ----- training -------------------------------------------------------

    def update(self, pc: int, history: GlobalHistoryRegister, taken: bool,
               prediction: Optional[TournamentPrediction] = None) -> None:
        """Train all three tables with a resolved branch outcome."""
        self._mutations += 1
        if (prediction is None or prediction.history is not history
                or prediction.history_version != history.version):
            prediction = self.predict(pc, history)
        # Both components always train (the classic Alpha 21264 rule).
        self.local.update(pc, taken)
        self.gshare.update(prediction.gshare_index, taken)
        # The chooser trains only when the components disagree, toward
        # whichever one was right.
        local_right = prediction.local_taken == taken
        gshare_right = prediction.gshare_taken == taken
        if local_right != gshare_right:
            self.chooser.update(pc, gshare_right)

    def observe(self, pc: int, history: GlobalHistoryRegister,
                taken: bool) -> bool:
        """Predict and immediately train; return whether it mispredicted."""
        prediction = self.predict(pc, history)
        self.update(pc, history, taken, prediction)
        return prediction.taken != taken

    # ----- maintenance ----------------------------------------------------

    def flush(self) -> None:
        """Drop all three tables (this family's flush mitigation)."""
        self._mutations += 1
        self.local.flush()
        self.gshare.flush()
        self.chooser.flush()

    def snapshot(self) -> tuple:
        """Sparse checkpoint of all three tables."""
        return (self.local.snapshot(), self.gshare.snapshot(),
                self.chooser.snapshot())

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot` (diff-based, see BasePredictor)."""
        self._mutations += 1
        local_snap, gshare_snap, chooser_snap = snap
        self.local.restore(local_snap)
        self.gshare.restore(gshare_snap)
        self.chooser.restore(chooser_snap)

    def populated_entries(self) -> int:
        """Total live counters across all three tables."""
        return (self.local.populated_entries()
                + self.gshare.populated_entries()
                + self.chooser.populated_entries())

    # ----- fuzz-oracle support --------------------------------------------

    def structural_violations(self, deep: bool = False) -> List[str]:
        """Structural invariants for the fuzz oracle's periodic walk.

        Every live counter must sit inside its n-bit saturating range
        and the ``_populated`` bookkeeping must match the live entries
        (``deep`` scans the full arrays for strays), mirroring the
        oracle's built-in TAGE walk.
        """
        violations: List[str] = []
        for name, table in (("local", self.local), ("gshare", self.gshare),
                            ("chooser", self.chooser)):
            maximum = (1 << table.counter_bits) - 1
            for idx in table._populated:
                counter = table._counters[idx]
                if counter is None:
                    violations.append(
                        f"tournament {name} index {idx} in _populated "
                        f"but empty")
                elif not 0 <= counter.value <= maximum:
                    violations.append(
                        f"tournament {name} counter {idx} value "
                        f"{counter.value} outside [0, {maximum}]")
            if deep:
                live = {idx for idx, counter in enumerate(table._counters)
                        if counter is not None}
                if live != table._populated:
                    violations.append(
                        f"tournament {name} _populated bookkeeping "
                        f"drifted: {len(live ^ table._populated)} stray "
                        f"indices")
        return violations


@register_model
class GshareTournamentModel(PredictorModel):
    """The gshare/tournament baseline family."""

    model_id = "gshare-tournament"
    display_name = "gshare + local tournament"
    provenance = "Assassyn-CPU tournament pipeline (related repo)"

    def build_direction_predictor(self) -> TournamentPredictor:
        return TournamentPredictor(
            local_index_bits=self.config.base_index_bits,
        )

    def build_history(self) -> GlobalHistoryRegister:
        return GlobalHistoryRegister(GHR_BITS)
