"""Pluggable predictor-family backends (ARCHITECTURE.md §13).

The paper reverse-engineers one predictor -- the Intel CBP of Figure 1:
a 194-doublet PHR feeding a base predictor plus tagged PHTs -- and the
original reproduction hard-coded that family into :class:`Machine`.
This module is the seam that turns the repro into a *branch-predictor
attack lab*: a :class:`PredictorModel` names one predictor family and
builds its two stateful halves, and :class:`~repro.cpu.machine.Machine`
is family-agnostic glue around them.

A family supplies two duck-typed components:

**The direction predictor** (``build_direction_predictor``), installed
as ``machine.cbp``.  Protocol::

    predict(pc, history) -> prediction   # prediction.taken: bool
    update(pc, history, taken, prediction=None)
    observe(pc, history, taken) -> bool  # mispredicted?
    flush()
    snapshot() -> builtins-only value; restore(snap)
    populated_entries() -> int
    mutations -> int                     # monotonic mutation epoch
    structural_violations(deep=False) -> List[str]   # optional; the
        fuzz oracle calls it when present instead of its built-in
        TAGE-shaped walk

**The history register** (``build_history``, one per SMT thread),
installed as ``ThreadContext.phr``.  Protocol::

    value -> int; bits -> int; capacity -> int; version -> int
    low_bits(n) -> int                   # for IBP / table index hashes
    on_conditional(pc, target, taken)    # commit of a conditional
    on_taken(pc, target)                 # commit of a taken
                                         # non-conditional branch
    clear(); set_value(v)
    snapshot() -> int; restore(snap); copy()

The *semantics* of the two commit hooks are the family's identity: the
Intel PHR folds a footprint on taken branches only, the M1-style PHR
records every conditional outcome, the gshare/tournament GHR shifts in
direction bits and ignores unconditional branches.  The machine calls
the hooks unconditionally and never special-cases a family.

Snapshot compatibility is enforced by name: every
:class:`~repro.cpu.machine.MachineSnapshot` carries the
``predictor_model`` id it was captured under, serialized artifacts
embed it, and restoring across families raises
:class:`~repro.cpu.serialize.SnapshotFormatError` instead of silently
mis-restoring one family's tables into another's.

The three built-in families:

======================  ==============================================
``intel-cbp``           The paper's reverse-engineered Intel CBP
                        (default; bit-identical to the pre-interface
                        machine, pinned by golden hashes).
``gshare-tournament``   A gshare + local tournament baseline in the
                        style of the Assassyn-CPU pipeline design.
``m1-phr``              An M1 Firestorm-style PHR variant per the
                        reverse engineering of arXiv 2502.10719.
======================  ==============================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple, Type

from repro.cpu.cbp import ConditionalBranchPredictor
from repro.cpu.phr import PathHistoryRegister


class UnknownPredictorModelError(ValueError):
    """``MachineConfig.predictor_model`` names no registered family."""


class PredictorModel(ABC):
    """One predictor family: metadata plus component factories.

    Instances are per-machine and hold only the config; all mutable
    state lives in the components they build, which keeps a model safe
    to rebuild from a config anywhere (worker forks, service shards,
    batch replicas).
    """

    #: Stable identity, embedded in snapshots and serialized artifacts.
    model_id: str = ""
    #: Human-readable family name for benchmark tables.
    display_name: str = ""
    #: One-line provenance of the modeled structure.
    provenance: str = ""

    def __init__(self, config):
        self.config = config

    @abstractmethod
    def build_direction_predictor(self):
        """A fresh direction predictor (the ``machine.cbp`` slot)."""

    @abstractmethod
    def build_history(self):
        """A fresh per-thread history register (the ``context.phr`` slot)."""

    def on_domain_switch(self, machine, thread, old_domain: str,
                         new_domain: str) -> None:
        """Hook fired by :meth:`Machine.set_domain` on a transition.

        The built-in families model unpartitioned hardware -- predictor
        state survives domain switches, which is the asymmetry every
        Pathfinder attack exploits -- so the default is a no-op.
        Secure-predictor wrappers (ROADMAP item 3, the arXiv 2005.08183
        isolation design) override this to flush or re-key per-domain
        state.
        """

    def describe(self) -> Dict[str, str]:
        """Row data for cross-family benchmark matrices."""
        return {
            "model": self.model_id,
            "family": self.display_name,
            "provenance": self.provenance,
        }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[PredictorModel]] = {}


def register_model(cls: Type[PredictorModel]) -> Type[PredictorModel]:
    """Class decorator: make ``cls`` addressable by its ``model_id``."""
    if not cls.model_id:
        raise ValueError(f"{cls.__name__} must define a model_id")
    existing = _REGISTRY.get(cls.model_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"predictor model id {cls.model_id!r} is already registered "
            f"by {existing.__name__}")
    _REGISTRY[cls.model_id] = cls
    return cls


def _ensure_builtin_models() -> None:
    """Import the built-in family modules so they self-register.

    Lazy (not at module import) to keep the dependency graph acyclic:
    the family modules import predictor components freely, and nothing
    below :mod:`repro.cpu.machine` needs the registry at import time.
    """
    from repro.cpu import m1, tournament  # noqa: F401  (side effect)


def model_ids() -> Tuple[str, ...]:
    """All registered family ids, sorted; the scenario-matrix axis."""
    _ensure_builtin_models()
    return tuple(sorted(_REGISTRY))


def resolve_model(model_id: str) -> Type[PredictorModel]:
    """The registered family class for ``model_id``."""
    _ensure_builtin_models()
    try:
        return _REGISTRY[model_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownPredictorModelError(
            f"unknown predictor model {model_id!r}; registered models: "
            f"{known}") from None


def build_model(config) -> PredictorModel:
    """Instantiate the family named by ``config.predictor_model``."""
    return resolve_model(config.predictor_model)(config)


# ----------------------------------------------------------------------
# the default family: the paper's Intel CBP
# ----------------------------------------------------------------------

@register_model
class IntelCbpModel(PredictorModel):
    """The reverse-engineered Intel conditional branch predictor.

    Exactly the structure the paper establishes: a
    :class:`~repro.cpu.phr.PathHistoryRegister` of
    ``config.phr_capacity`` doublets folding the Figure 2 footprint on
    taken branches, and a :class:`~repro.cpu.cbp.ConditionalBranchPredictor`
    (base predictor + tagged PHTs, Figure 3).  This is the default
    backend and is pinned bit-identical to the pre-interface machine by
    ``tests/test_predictor_golden.py``.
    """

    model_id = "intel-cbp"
    display_name = "Intel CBP (PHR + base/tagged PHTs)"
    provenance = "Pathfinder (ASPLOS 2024), Sections 2-3"

    def build_direction_predictor(self) -> ConditionalBranchPredictor:
        config = self.config
        return ConditionalBranchPredictor(
            history_lengths=config.pht_history_lengths,
            sets=config.pht_sets,
            ways=config.pht_ways,
            counter_bits=config.counter_bits,
            tag_bits=config.pht_tag_bits,
            base_index_bits=config.base_index_bits,
            pc_index_bit=config.pc_index_bit,
        )

    def build_history(self) -> PathHistoryRegister:
        return PathHistoryRegister(self.config.phr_capacity)


def conformance_workload() -> List[Tuple[str, int, int, bool]]:
    """The fixed branch stream the cross-model contract tests replay.

    A deterministic mix of conditional commits (both outcomes, varied
    footprint bits) and taken non-conditional branches, long enough to
    populate tagged/gshare tables and wrap short histories.  Families
    consume it through the machine commit hooks only, so one workload
    exercises every backend identically.
    """
    stream: List[Tuple[str, int, int, bool]] = []
    for step in range(160):
        pc = 0x40_0000 + 4 * (step % 37) + ((step % 5) << 8)
        target = pc + 32 + ((step % 7) << 6)
        taken = bool((step * 2654435761) & 0b100)
        stream.append(("conditional", pc, target, taken))
        if step % 6 == 0:
            jump_pc = 0x41_0000 + 16 * step
            stream.append(("taken", jump_pc, jump_pc + 0x40, True))
    return stream
