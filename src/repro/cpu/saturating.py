"""N-bit saturating counters (paper Observation 2: n = 3 on Intel).

A counter holds a value in ``[0, 2^n - 1]``; the high half predicts taken.
The paper determines the width by fixing the PHR, feeding a branch the
pattern ``T^m N^m`` and growing ``m`` until the misprediction count stops
increasing -- the plateau gives ``n = log2(m + 1)``.  The benchmark
``bench_obs2_counter_width`` replays that experiment against this model.
"""

from __future__ import annotations


class SaturatingCounter:
    """A saturating up/down counter with taken/not-taken semantics."""

    def __init__(self, bits: int = 3, value: int = None):  # type: ignore[assignment]
        if bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        #: Threshold at or above which the counter predicts taken.
        self.threshold = 1 << (bits - 1)
        if value is None:
            value = self.threshold - 1  # weakly not-taken
        if not 0 <= value <= self.maximum:
            raise ValueError(f"counter value out of range: {value}")
        self.value = value

    @classmethod
    def weak(cls, bits: int, taken: bool) -> "SaturatingCounter":
        """A counter one step into the ``taken`` side (allocation state)."""
        counter = cls(bits)
        counter.value = counter.threshold if taken else counter.threshold - 1
        return counter

    @classmethod
    def strong(cls, bits: int, taken: bool) -> "SaturatingCounter":
        """A fully saturated counter."""
        counter = cls(bits)
        counter.value = counter.maximum if taken else 0
        return counter

    @property
    def prediction(self) -> bool:
        """True if this counter currently predicts taken."""
        return self.value >= self.threshold

    @property
    def is_saturated(self) -> bool:
        """Whether the counter is at either extreme."""
        return self.value in (0, self.maximum)

    def update(self, taken: bool) -> None:
        """Move one step toward the observed outcome."""
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def reset_weak(self, taken: bool) -> None:
        """Re-initialise to the weak state on the given side."""
        self.value = self.threshold if taken else self.threshold - 1

    def copy(self) -> "SaturatingCounter":
        return SaturatingCounter(self.bits, self.value)

    def __repr__(self) -> str:
        side = "T" if self.prediction else "N"
        return f"SaturatingCounter({self.value}/{self.maximum} -> {side})"
