"""Branch target buffer (Figure 1).

The BTB caches the taken target of recently executed branches so the
front end can redirect fetch before decode.  Pathfinder's attacks do not
exploit the BTB directly, but the machine models it so that (a) the BPU
diagram of Figure 1 is complete, (b) boundary experiments can confirm
which structures a given mitigation flushes, and (c) future extensions
(e.g. Jump-over-ASLR style probing) have a substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.utils.bits import mask


@dataclass(slots=True)
class BtbEntry:
    """One BTB way: partial tag plus cached target."""

    tag: int
    target: int


class BranchTargetBuffer:
    """Set-associative branch target cache with LRU replacement."""

    def __init__(self, sets: int = 1024, ways: int = 8,
                 index_low_bit: int = 5, tag_bits: int = 16):
        if sets & (sets - 1):
            raise ValueError(f"set count must be a power of two, got {sets}")
        self.sets = sets
        self.ways = ways
        self.index_low_bit = index_low_bit
        self.index_bits = sets.bit_length() - 1
        self.tag_bits = tag_bits
        self._sets: List[List[BtbEntry]] = [[] for _ in range(sets)]
        self._index_mask = mask(self.index_bits)
        self._tag_shift = index_low_bit + self.index_bits
        self._tag_mask = mask(tag_bits)
        self.hits = 0
        self.misses = 0
        #: Mutation epoch (see :attr:`DataCache.mutations`): bumped by
        #: every state-changing method, including :meth:`predict`, whose
        #: LRU move and hit/miss accounting are snapshot-visible state.
        self.mutations = 0
        #: Dirty-set tracking for fast consecutive restores from the
        #: same snapshot object (see :meth:`DataCache.restore`).
        self._dirty: set = set()
        self._dirty_all = True
        self._restore_source = None

    def _index(self, pc: int) -> int:
        return (pc >> self.index_low_bit) & self._index_mask

    def _tag(self, pc: int) -> int:
        return ((pc >> self._tag_shift) & self._tag_mask) ^ (pc & 0b11111)

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target of the branch at ``pc``, or None on a miss."""
        self.mutations += 1
        wanted = self._tag(pc)
        index = self._index(pc)
        self._dirty.add(index)
        ways = self._sets[index]
        for position, entry in enumerate(ways):
            if entry.tag == wanted:
                # Move to MRU position.
                ways.insert(0, ways.pop(position))
                self.hits += 1
                return entry.target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target for the branch at ``pc``."""
        # _index/_tag inlined: update runs on every committed taken branch.
        self.mutations += 1
        index = (pc >> self.index_low_bit) & self._index_mask
        wanted = ((pc >> self._tag_shift) & self._tag_mask) ^ (pc & 0b11111)
        self._dirty.add(index)
        ways = self._sets[index]
        for position, entry in enumerate(ways):
            if entry.tag == wanted:
                entry.target = target
                ways.insert(0, ways.pop(position))
                return
        ways.insert(0, BtbEntry(tag=wanted, target=target))
        if len(ways) > self.ways:
            ways.pop()

    def flush(self) -> None:
        """Drop all entries."""
        self.mutations += 1
        self._dirty_all = True
        self._sets = [[] for _ in range(self.sets)]

    def populated_entries(self) -> int:
        """Total live entries."""
        return sum(len(ways) for ways in self._sets)

    # ----- checkpointing ------------------------------------------------------

    def snapshot(self) -> tuple:
        """Sparse checkpoint: non-empty sets (LRU order) plus counters."""
        entries = {
            index: tuple((entry.tag, entry.target) for entry in ways)
            for index, ways in enumerate(self._sets) if ways
        }
        return entries, self.hits, self.misses

    def restore(self, snap: tuple) -> None:
        """Restore a :meth:`snapshot`; only diverged sets are rebuilt.

        Restoring the *same snapshot object* consecutively visits only
        the sets mutated since the previous restore (see
        :meth:`DataCache.restore`).
        """
        self.mutations += 1
        entries, self.hits, self.misses = snap
        if snap is self._restore_source and not self._dirty_all:
            indices = tuple(self._dirty)
        else:
            indices = range(self.sets)
        for index in indices:
            ways = self._sets[index]
            wanted = entries.get(index)
            if wanted is None:
                if ways:
                    self._sets[index] = []
                continue
            if len(ways) == len(wanted) and all(
                entry.tag == tag and entry.target == target
                for entry, (tag, target) in zip(ways, wanted)
            ):
                continue
            self._sets[index] = [BtbEntry(tag=tag, target=target)
                                 for tag, target in wanted]
        self._restore_source = snap
        self._dirty_all = False
        self._dirty.clear()
