"""Functional simulator of the paper's branch prediction unit.

This package implements the reverse-engineered CBP model the paper builds
its attacks on (Section 2): the 194-doublet path history register with the
Figure 2 footprint function, the base predictor plus three tagged pattern
history tables of Figure 3 with 3-bit saturating counters (Observation 2),
and the surrounding machine model -- data cache, speculation, SMT threads,
protection domains -- needed by the attack case studies.

The direction predictor and history register are pluggable *predictor
families* (:mod:`repro.cpu.model`, ARCHITECTURE.md §13): the paper's
Intel CBP is the default ``intel-cbp`` family; ``m1-phr``
(:mod:`repro.cpu.m1`) and ``gshare-tournament``
(:mod:`repro.cpu.tournament`) provide the cross-architecture comparison
points, selected through :attr:`MachineConfig.predictor_model`.
"""

from repro.cpu.config import (
    ALDER_LAKE,
    FIRESTORM_M1,
    MachineConfig,
    PREDICTOR_LAB_MACHINES,
    RAPTOR_LAKE,
    SKYLAKE,
    TARGET_MACHINES,
    TOURNAMENT_BASELINE,
)
from repro.cpu.footprint import branch_footprint, footprint_doublet
from repro.cpu.phr import PathHistoryRegister
from repro.cpu.saturating import SaturatingCounter
from repro.cpu.cbp import ConditionalBranchPredictor, Prediction
from repro.cpu.cache import DataCache
from repro.cpu.model import (
    PredictorModel,
    UnknownPredictorModelError,
    build_model,
    model_ids,
    resolve_model,
)
from repro.cpu.perf import PerfCounters
from repro.cpu.machine import Machine, MachineRunResult, MachineSnapshot
from repro.cpu.serialize import SNAPSHOT_FORMAT_VERSION, SnapshotFormatError

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotFormatError",
    "ALDER_LAKE",
    "ConditionalBranchPredictor",
    "DataCache",
    "FIRESTORM_M1",
    "Machine",
    "MachineConfig",
    "MachineRunResult",
    "MachineSnapshot",
    "PREDICTOR_LAB_MACHINES",
    "PathHistoryRegister",
    "PerfCounters",
    "Prediction",
    "PredictorModel",
    "RAPTOR_LAKE",
    "SKYLAKE",
    "SaturatingCounter",
    "TARGET_MACHINES",
    "TOURNAMENT_BASELINE",
    "UnknownPredictorModelError",
    "branch_footprint",
    "build_model",
    "footprint_doublet",
    "model_ids",
    "resolve_model",
]
