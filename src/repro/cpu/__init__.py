"""Functional simulator of the Intel branch prediction unit.

This package implements the reverse-engineered CBP model the paper builds
its attacks on (Section 2): the 194-doublet path history register with the
Figure 2 footprint function, the base predictor plus three tagged pattern
history tables of Figure 3 with 3-bit saturating counters (Observation 2),
and the surrounding machine model -- data cache, speculation, SMT threads,
protection domains -- needed by the attack case studies.
"""

from repro.cpu.config import (
    ALDER_LAKE,
    MachineConfig,
    RAPTOR_LAKE,
    SKYLAKE,
    TARGET_MACHINES,
)
from repro.cpu.footprint import branch_footprint, footprint_doublet
from repro.cpu.phr import PathHistoryRegister
from repro.cpu.saturating import SaturatingCounter
from repro.cpu.cbp import ConditionalBranchPredictor, Prediction
from repro.cpu.cache import DataCache
from repro.cpu.perf import PerfCounters
from repro.cpu.machine import Machine, MachineRunResult, MachineSnapshot
from repro.cpu.serialize import SNAPSHOT_FORMAT_VERSION, SnapshotFormatError

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotFormatError",
    "ALDER_LAKE",
    "ConditionalBranchPredictor",
    "DataCache",
    "Machine",
    "MachineConfig",
    "MachineRunResult",
    "MachineSnapshot",
    "PathHistoryRegister",
    "PerfCounters",
    "Prediction",
    "RAPTOR_LAKE",
    "SKYLAKE",
    "SaturatingCounter",
    "TARGET_MACHINES",
    "branch_footprint",
    "footprint_doublet",
]
