"""Architectural trace capture and replay (ARCHITECTURE.md §12).

Under ``speculate=False`` a program's architectural path depends only on
its inputs -- the program text, the entry point, the starting register
state, and memory.  That means one interpretation of a given input can
stand in for *every* interpretation of that input: capture the committed
event stream once, then replay it into any number of machine replicas
without touching the interpreter again.  :class:`ArchTrace` is that
captured artifact, and the batch engine's shared-trace and cached-trace
modes (``BatchMachine.run_batch(shared_input=...)`` /
``run_batch(trace_cache=...)``) are its consumers.

What a trace must carry to be a faithful stand-in:

* the committed branch events, in order, with enough kind information to
  replay CALL/RET through a replica's RAS and INDIRECT through its IBP;
* the committed cache-access address stream (loads and stores both fold
  into :meth:`DataCache.access`);
* the final architectural state -- register file and the *delta* of
  memory bytes the run wrote -- so a replaying replica lands on the same
  ``(CpuState, Memory)`` the interpreter would have produced;
* the retired-instruction count, for perf-counter parity.

Safety is content addressing plus divergence detection.  A trace's
:attr:`key` digests the program text, entry, trace mode, the full input
(registers, flags, call stack, latencies, memory bytes) *and* the
starting data-cache state -- load latencies flow into
``CpuState.reg_latency``, so two runs from different cache contents are
different runs.  :attr:`branch_stream_hash` fingerprints the recorded
event stream; :meth:`ArchTrace.verify` recomputes it, and a keyed cache
that finds a mismatch must treat the entry as poisoned
(:class:`TraceDivergenceError` names the failure) rather than replay it.
A stale or corrupted trace therefore degrades to a cache miss and a
fresh capture, never to silently wrong results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.isa.interpreter import BranchKind, CpuState
from repro.isa.memory import Memory
from repro.isa.program import Program

__all__ = [
    "KIND_CODES",
    "ArchTrace",
    "TraceDivergenceError",
    "cache_digest",
    "capture_trace",
    "input_digest",
    "program_fingerprint",
    "trace_key",
]

#: Event kind codes.  Phase-2 predictor replay only distinguishes
#: conditional (1) from taken-jump (everything else); the trace walk
#: additionally needs CALL/RET (RAS traffic) and INDIRECT (IBP traffic).
KIND_JUMP = 0
KIND_COND = 1
KIND_CALL = 2
KIND_RET = 3
KIND_INDIRECT = 4

KIND_CODES = {
    BranchKind.JUMP: KIND_JUMP,
    BranchKind.CALL: KIND_CALL,
    BranchKind.RET: KIND_RET,
    BranchKind.INDIRECT: KIND_INDIRECT,
}


class TraceDivergenceError(RuntimeError):
    """A cached trace no longer matches its recorded identity.

    Raised (or counted, by caches that degrade to a miss) when a trace's
    recomputed branch-stream hash or content key disagrees with what was
    stored -- the signal that replaying it would corrupt results.
    """


# ----------------------------------------------------------------------
# content identity
# ----------------------------------------------------------------------

def program_fingerprint(program: Program) -> str:
    """Content identity of an assembled program (text + labels + entry).

    Mirrors the service store's ``program_digest`` (this module sits
    below :mod:`repro.service` and cannot import it): two programs with
    identical layout fingerprint equal regardless of how they were
    built.
    """
    digest = hashlib.sha256()
    for address, instruction in program.items():
        digest.update(f"{address}:{instruction!r};".encode("utf-8"))
    for label, address in sorted(program.labels.items()):
        digest.update(f"L{label}={address};".encode("utf-8"))
    digest.update(f"E{program.entry}".encode("utf-8"))
    return digest.hexdigest()


def _digest_memory(digest, memory: Memory) -> None:
    """Fold a memory's populated bytes into ``digest``.

    Bytes are folded in dict-insertion order: deterministic provisioning
    produces a deterministic order, and including the addresses means an
    equal digest implies equal content.  Two memories holding the same
    bytes written in a different order digest *differently* -- a spurious
    cache miss, which is safe; a false hit is not possible.
    """
    data = memory._bytes
    count = len(data)
    digest.update(count.to_bytes(8, "little"))
    if not count:
        return
    addresses = np.fromiter(data.keys(), dtype=np.int64, count=count)
    values = np.fromiter(data.values(), dtype=np.uint8, count=count)
    digest.update(addresses.tobytes())
    digest.update(values.tobytes())


def input_digest(state: Optional[CpuState], memory: Memory) -> str:
    """Content identity of one architectural input ``(state, memory)``.

    Covers every field the interpreter reads or carries through --
    registers, flags, the call stack, both latency trackers, and the
    populated memory bytes.  Latencies matter because the captured final
    state carries them verbatim.
    """
    digest = hashlib.sha256()
    if state is None:
        digest.update(b"S-")
    else:
        digest.update(repr(sorted(state.regs.items())).encode("utf-8"))
        digest.update(repr(state.flags).encode("utf-8"))
        digest.update(repr(state.call_stack).encode("utf-8"))
        digest.update(repr(sorted(state.reg_latency.items())).encode("utf-8"))
        digest.update(repr(state.flags_latency).encode("utf-8"))
    _digest_memory(digest, memory)
    return digest.hexdigest()


def cache_digest(cache) -> str:
    """Content identity of a data cache's current state.

    Load latencies (hit vs miss) land in ``CpuState.reg_latency``, so a
    trace captured against one cache state is only valid for replicas in
    the same cache state.  The digest is memoized against the cache's
    mutation counter, so the common trial-loop shape -- restore to a
    pristine (usually empty) cache before every block -- pays the hash
    once per restore, not once per replica.
    """
    epoch = getattr(cache, "mutations", None)
    if epoch is not None:
        memo = getattr(cache, "_digest_memo", None)
        if memo is not None and memo[0] == epoch:
            return memo[1]
        # Right after a restore the state equals the restored snapshot's
        # state, so the digest only depends on the snapshot object --
        # the restore-per-trial loop hashes it once, not once per trial.
        if getattr(cache, "_restored_epoch", None) == epoch:
            source_memo = getattr(cache, "_source_digest_memo", None)
            if (source_memo is not None
                    and source_memo[0] is cache._restore_source):
                value = source_memo[1]
                cache._digest_memo = (epoch, value)
                return value
    lines, hits, misses = cache.snapshot()
    digest = hashlib.sha256()
    digest.update(f"{hits}:{misses};".encode("utf-8"))
    for index in sorted(lines):
        digest.update(f"{index}={lines[index]};".encode("utf-8"))
    value = digest.hexdigest()
    if epoch is not None:
        cache._digest_memo = (epoch, value)
        if getattr(cache, "_restored_epoch", None) == epoch:
            cache._source_digest_memo = (cache._restore_source, value)
    return value


def trace_key(program_fp: str, entry: Optional[int], trace_mode: str,
              inputs: str, cache_state: str) -> str:
    """The content address a cached :class:`ArchTrace` lives under."""
    text = f"arch-trace:{program_fp}:{entry}:{trace_mode}:{inputs}:" \
           f"{cache_state}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _hash_events(events: List[Tuple[int, int, int, int, int]]) -> str:
    """SHA-256 fingerprint of a committed branch-event stream."""
    digest = hashlib.sha256()
    digest.update(len(events).to_bytes(8, "little"))
    if events:
        digest.update(np.asarray(events, dtype=np.int64).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the trace artifact
# ----------------------------------------------------------------------

@dataclass
class ArchTrace:
    """One captured architectural execution, ready for replay.

    ``events`` are ``(kind, pc, target, taken, next_pc)`` committed
    branch events (kind codes above); ``accesses`` is the committed
    cache-access address stream; ``memory_delta`` holds exactly the
    bytes the run changed relative to its starting memory (applying it
    to an identical starting memory reproduces the final memory, which
    the content key guarantees).  ``records`` is the materialized
    :class:`BranchRecord` trace for the capture's ``trace_mode`` --
    replayed results share it, so callers must treat run traces as
    read-only (they already do; results are value objects).
    """

    key: str
    events: List[Tuple[int, int, int, int, int]]
    accesses: List[int]
    instructions: int
    records: list
    trace_mode: str
    final_state: CpuState
    memory_delta: Dict[int, int]
    halted: bool
    branch_stream_hash: str = ""
    #: Events that touch a replay shadow (everything non-conditional);
    #: precomputed so an indirect-free trace walk skips the conditional
    #: bulk entirely.
    jump_events: list = field(default_factory=list, repr=False)
    has_indirect: bool = False

    def __post_init__(self):
        if not self.branch_stream_hash:
            self.branch_stream_hash = _hash_events(self.events)
        if not self.jump_events:
            self.jump_events = [event for event in self.events
                                if event[0] != KIND_COND]
        self.has_indirect = any(event[0] == KIND_INDIRECT
                                for event in self.jump_events)

    def verify(self, key: Optional[str] = None) -> None:
        """Check this trace against its recorded identity.

        Raises :class:`TraceDivergenceError` when the recomputed branch
        stream hash no longer matches, or when ``key`` (the address a
        cache is serving it under) disagrees with the trace's own.
        """
        if key is not None and key != self.key:
            raise TraceDivergenceError(
                f"trace keyed {self.key[:12]}... served under "
                f"{key[:12]}...")
        recomputed = _hash_events(self.events)
        if recomputed != self.branch_stream_hash:
            raise TraceDivergenceError(
                "branch stream diverged from its recorded hash "
                f"({recomputed[:12]}... != "
                f"{self.branch_stream_hash[:12]}...)")


def capture_trace(key: str, events: list, accesses: list, execution,
                  initial_memory: Dict[int, int], memory: Memory,
                  trace_mode: str) -> ArchTrace:
    """Build an :class:`ArchTrace` from a completed interpretation.

    ``initial_memory`` is the memory snapshot taken *before* the run;
    only bytes that changed are stored (memory never deletes keys, so
    the final state is exactly ``initial + delta``).
    """
    final = memory._bytes
    get = initial_memory.get
    delta = {address: value for address, value in final.items()
             if get(address) != value}
    return ArchTrace(
        key=key,
        events=events,
        accesses=accesses,
        instructions=execution.instructions,
        records=execution.trace,
        trace_mode=trace_mode,
        final_state=execution.state.copy(),
        memory_delta=delta,
        halted=execution.halted,
    )
