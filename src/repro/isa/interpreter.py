"""Architectural interpreter for the reproduction ISA.

The interpreter executes a :class:`~repro.isa.program.Program` and reports
every control-flow event to a pluggable :class:`CpuHooks` object.  The
microarchitectural machinery (branch predictors, caches, speculation)
lives in :mod:`repro.cpu.machine`, which implements those hooks; running a
program with the default hooks gives a purely architectural execution,
which is what the Pathfinder CFG tool and the codec ground truths use.

Execution runs through *predecoded threaded code*: the first run of a
program compiles every static instruction into a bound handler closure
(:mod:`repro.isa.predecode`), so the hot loop is one dict index plus one
call per dynamic instruction -- no ``isinstance`` chain, no per-branch
label resolution.  Per DESIGN.md decision 5 the original dispatch loops
survive as :meth:`Interpreter.run_reference` and
:meth:`Interpreter.run_transient_reference`, and property tests pin the
two paths bit-identical (registers, flags, memory, trace, perf-counter
deltas, transient-executed counts).

Committed runs accept ``trace='full'|'branches'|'none'``: ``full``
records every dynamic branch (the default, and the reference twin's only
behaviour), ``branches`` records conditional branches only, and ``none``
skips :class:`BranchRecord` allocation entirely for pure-throughput runs.
Hooks fire identically in every mode.

Transient (wrong-path) execution is supported through
:meth:`Interpreter.run_transient`: the machine invokes it after a
misprediction with a sandboxed copy of the register state and a
store-buffer memory overlay.  Wrong-path loads are routed through the
hooks so they can perturb the simulated data cache -- the covert channel
the AES attack depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional

from repro.isa.instructions import (
    WORD_BITS,
    WORD_MASK,
    BinaryOp,
    Call,
    CondBranch,
    Flags,
    Halt,
    Jump,
    JumpIndirect,
    Load,
    Mov,
    MovImm,
    Nop,
    PyOp,
    Ret,
    Store,
    compute_flags as _compute_flags,
)
from repro.isa.memory import Memory, TransientMemory
from repro.isa.predecode import TRACE_MODES, BranchKind, BranchRecord
from repro.isa.program import Program, ProgramError

__all__ = [
    "BranchKind",
    "BranchRecord",
    "CpuHooks",
    "CpuState",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
    "TRACE_MODES",
    "WORD_BITS",
    "WORD_MASK",
]


class ExecutionLimitExceeded(Exception):
    """Raised when a program exceeds its dynamic instruction budget."""


class CpuHooks:
    """Microarchitectural observation points.

    The default implementations are no-ops with ideal (taken == prediction)
    behaviour; :class:`repro.cpu.machine.Machine` overrides all of them.
    """

    def conditional_branch(
        self, pc: int, target: int, fallthrough: int, taken: bool,
        resolve_latency: int,
    ) -> None:
        """Called after each conditional branch resolves architecturally."""

    def unconditional_branch(self, pc: int, target: int, kind: BranchKind,
                             next_pc: int) -> None:
        """Called for each taken jump/call/ret/indirect branch.

        ``next_pc`` is the sequential successor (``pc + size``) -- the
        return address a call pushes onto the RAS, which matters for
        variable-size ``Call`` encodings.
        """

    def load(self, address: int, width: int) -> int:
        """Called for each committed load; returns its latency in cycles."""
        return 1

    def store(self, address: int, width: int) -> None:
        """Called for each committed store."""

    def transient_load(self, address: int, width: int) -> int:
        """Called for each wrong-path load; returns its latency in cycles."""
        return 1

    def instruction_retired(self, pc: int) -> None:
        """Called once per committed instruction."""


@dataclass
class CpuState:
    """Architectural register state."""

    regs: Dict[str, int] = field(default_factory=dict)
    flags: Flags = field(default_factory=Flags)
    call_stack: List[int] = field(default_factory=list)
    #: Cycles until each register's most recent producing load completes;
    #: drives the misprediction resolution latency (Section 9's cache flush
    #: of the round count widens the speculation window through this).
    reg_latency: Dict[str, int] = field(default_factory=dict)
    #: Latency of the operation that produced the current flags.
    flags_latency: int = 0

    def read(self, reg: str) -> int:
        return self.regs.get(reg, 0)

    def write(self, reg: str, value: int) -> None:
        self.regs[reg] = value & WORD_MASK

    def latency_of(self, reg: Optional[str]) -> int:
        if reg is None:
            return 0
        return self.reg_latency.get(reg, 0)

    def copy(self) -> "CpuState":
        return CpuState(
            regs=dict(self.regs),
            flags=self.flags,
            call_stack=list(self.call_stack),
            reg_latency=dict(self.reg_latency),
            flags_latency=self.flags_latency,
        )


@dataclass
class ExecutionResult:
    """Outcome of an architectural run."""

    trace: List[BranchRecord]
    instructions: int
    state: CpuState
    halted: bool
    #: Resume point when the run stopped at its instruction budget with
    #: ``on_limit='stop'`` (None after a normal halt).  Re-entering at
    #: ``next_pc`` with the same state/memory/hooks continues the run
    #: exactly where it left off -- the prefix+suffix replay contract.
    next_pc: Optional[int] = None

    @cached_property
    def taken_branches(self) -> List[BranchRecord]:
        """The dynamic taken branches, in order (what the PHR records).

        Computed once and cached: results are immutable after the run, so
        repeated access must not re-scan the trace.
        """
        return [record for record in self.trace if record.taken]

    @cached_property
    def conditional_records(self) -> List[BranchRecord]:
        """The dynamic conditional branches, in order (cached)."""
        return [r for r in self.trace if r.kind is BranchKind.CONDITIONAL]


class Interpreter:
    """Executes programs architecturally, reporting events to hooks."""

    def __init__(self, program: Program, hooks: Optional[CpuHooks] = None):
        self.program = program
        self.hooks = hooks if hooks is not None else CpuHooks()

    # ------------------------------------------------------------------
    # committed execution (predecoded fast path)
    # ------------------------------------------------------------------

    def run(
        self,
        state: Optional[CpuState] = None,
        memory: Optional[Memory] = None,
        entry: Optional[int] = None,
        max_instructions: int = 2_000_000,
        trace: str = "full",
        on_limit: str = "raise",
    ) -> ExecutionResult:
        """Run from ``entry`` (default: program entry) until Halt.

        A ``Ret`` with an empty call stack also terminates the run, which
        lets victim *functions* be executed directly.  ``trace`` selects
        how much of the dynamic branch trace is materialised (see the
        module docstring); it never changes hook behaviour.

        ``on_limit`` chooses what hitting ``max_instructions`` means:
        ``'raise'`` (the default) treats it as a runaway program;
        ``'stop'`` returns a partial, resumable result (``halted=False``,
        ``next_pc`` set) with no instruction executed beyond the budget.
        """
        if on_limit not in ("raise", "stop"):
            raise ValueError(f"unknown on_limit policy {on_limit!r}")
        if state is None:
            state = CpuState()
        if memory is None:
            memory = Memory()
        handlers = self.program.committed_handlers(trace)
        hooks = self.hooks
        pc = self.program.entry if entry is None else entry
        records: List[BranchRecord] = []
        executed = 0

        while True:
            if executed >= max_instructions:
                if on_limit == "stop":
                    return ExecutionResult(trace=records,
                                           instructions=executed,
                                           state=state, halted=False,
                                           next_pc=pc)
                raise ExecutionLimitExceeded(
                    f"{self.program.name} exceeded {max_instructions} instructions"
                )
            try:
                handler = handlers[pc]
            except KeyError:
                raise ProgramError(f"no instruction at {pc:#x}") from None
            executed += 1
            pc = handler(state, memory, hooks, records)
            if pc is None:  # Halt, or Ret from the outermost frame
                break

        return ExecutionResult(trace=records, instructions=executed,
                               state=state, halted=True)

    # ------------------------------------------------------------------
    # committed execution (reference dispatch-loop twin)
    # ------------------------------------------------------------------

    def run_reference(
        self,
        state: Optional[CpuState] = None,
        memory: Optional[Memory] = None,
        entry: Optional[int] = None,
        max_instructions: int = 2_000_000,
        on_limit: str = "raise",
    ) -> ExecutionResult:
        """The original isinstance-dispatch loop, kept as the reference
        twin of :meth:`run` (DESIGN.md decision 5).  Always records the
        full trace."""
        if on_limit not in ("raise", "stop"):
            raise ValueError(f"unknown on_limit policy {on_limit!r}")
        if state is None:
            state = CpuState()
        if memory is None:
            memory = Memory()
        pc = self.program.entry if entry is None else entry
        trace: List[BranchRecord] = []
        executed = 0
        halted = False

        while True:
            if executed >= max_instructions:
                if on_limit == "stop":
                    return ExecutionResult(trace=trace,
                                           instructions=executed,
                                           state=state, halted=False,
                                           next_pc=pc)
                raise ExecutionLimitExceeded(
                    f"{self.program.name} exceeded {max_instructions} instructions"
                )
            instruction = self.program.instruction_at(pc)
            executed += 1
            next_pc = pc + instruction.size

            if isinstance(instruction, Halt):
                self.hooks.instruction_retired(pc)
                halted = True
                break
            pc = self._execute_one(instruction, pc, next_pc, state, memory, trace)
            if pc is None:  # Ret from the outermost frame
                halted = True
                break

        return ExecutionResult(trace=trace, instructions=executed, state=state,
                               halted=halted)

    def _execute_one(
        self,
        instruction,
        pc: int,
        next_pc: int,
        state: CpuState,
        memory: Memory,
        trace: List[BranchRecord],
    ) -> Optional[int]:
        """Execute one committed instruction; return the next pc."""
        hooks = self.hooks

        if isinstance(instruction, Nop):
            pass
        elif isinstance(instruction, MovImm):
            state.write(instruction.dst, instruction.imm)
            state.reg_latency[instruction.dst] = 0
        elif isinstance(instruction, Mov):
            state.write(instruction.dst, state.read(instruction.src))
            state.reg_latency[instruction.dst] = state.latency_of(instruction.src)
        elif isinstance(instruction, BinaryOp):
            lhs = state.read(instruction.dst)
            rhs = (instruction.imm if instruction.imm is not None
                   else state.read(instruction.src))
            latency = max(
                state.latency_of(instruction.dst),
                state.latency_of(instruction.src),
            )
            if instruction.set_flags:
                state.flags = _compute_flags(lhs, rhs)
                state.flags_latency = latency
            if not instruction.cmp_only:
                state.write(instruction.dst, instruction.apply(lhs, rhs))
                state.reg_latency[instruction.dst] = latency
        elif isinstance(instruction, Load):
            address = (state.read(instruction.base) + instruction.offset) & WORD_MASK
            latency = hooks.load(address, instruction.width)
            state.write(instruction.dst, memory.read(address, instruction.width))
            state.reg_latency[instruction.dst] = latency
        elif isinstance(instruction, Store):
            address = (state.read(instruction.base) + instruction.offset) & WORD_MASK
            memory.write(address, instruction.width, state.read(instruction.src))
            hooks.store(address, instruction.width)
        elif isinstance(instruction, PyOp):
            reads = {reg: state.read(reg) for reg in instruction.reads}
            if instruction.touches_memory:
                writes = instruction.fn(reads, memory)
            else:
                writes = instruction.fn(reads)
            for reg in instruction.writes:
                if reg not in writes:
                    raise ProgramError(
                        f"PyOp {instruction.name!r} did not produce {reg!r}"
                    )
                state.write(reg, writes[reg])
                state.reg_latency[reg] = 0
        elif isinstance(instruction, CondBranch):
            target = self.program.address_of(instruction.target)
            taken = state.flags.satisfies(instruction.condition)
            resolve_latency = state.flags_latency
            hooks.conditional_branch(pc, target, next_pc, taken, resolve_latency)
            actual_next = target if taken else next_pc
            trace.append(BranchRecord(pc, BranchKind.CONDITIONAL, taken,
                                      target, next_pc, actual_next))
            hooks.instruction_retired(pc)
            return actual_next
        elif isinstance(instruction, Jump):
            target = self.program.address_of(instruction.target)
            hooks.unconditional_branch(pc, target, BranchKind.JUMP, next_pc)
            trace.append(BranchRecord(pc, BranchKind.JUMP, True,
                                      target, next_pc, target))
            hooks.instruction_retired(pc)
            return target
        elif isinstance(instruction, JumpIndirect):
            target = state.read(instruction.reg)
            hooks.unconditional_branch(pc, target, BranchKind.INDIRECT, next_pc)
            trace.append(BranchRecord(pc, BranchKind.INDIRECT, True,
                                      target, next_pc, target))
            hooks.instruction_retired(pc)
            return target
        elif isinstance(instruction, Call):
            target = self.program.address_of(instruction.target)
            state.call_stack.append(next_pc)
            hooks.unconditional_branch(pc, target, BranchKind.CALL, next_pc)
            trace.append(BranchRecord(pc, BranchKind.CALL, True,
                                      target, next_pc, target))
            hooks.instruction_retired(pc)
            return target
        elif isinstance(instruction, Ret):
            if not state.call_stack:
                hooks.instruction_retired(pc)
                return None
            target = state.call_stack.pop()
            hooks.unconditional_branch(pc, target, BranchKind.RET, next_pc)
            trace.append(BranchRecord(pc, BranchKind.RET, True,
                                      target, next_pc, target))
            hooks.instruction_retired(pc)
            return target
        else:
            raise ProgramError(f"cannot execute {instruction!r} at {pc:#x}")

        hooks.instruction_retired(pc)
        return next_pc

    # ------------------------------------------------------------------
    # transient (wrong-path) execution
    # ------------------------------------------------------------------

    def run_transient(
        self,
        start_pc: int,
        state: CpuState,
        memory: Memory,
        budget: int,
    ) -> int:
        """Execute the wrong path for at most ``budget`` instructions.

        Runs with a *copy* of the register state and a store-buffer overlay
        so that nothing architectural survives the squash.  Wrong-path
        loads are reported through :meth:`CpuHooks.transient_load`, which
        is how they perturb the simulated cache.  Returns the number of
        instructions that executed transiently.
        """
        transient_state = state.copy()
        transient_memory = TransientMemory(memory)
        handlers = self.program.transient_handlers()
        handler_at = handlers.get
        hooks = self.hooks
        pc = start_pc
        executed = 0

        while executed < budget:
            handler = handler_at(pc)
            if handler is None:  # wrong path ran off the mapped code
                break
            executed += 1
            pc = handler(transient_state, transient_memory, hooks)
            if pc is None:  # halt / empty-stack ret / uninterpretable
                break

        return executed

    def run_transient_reference(
        self,
        start_pc: int,
        state: CpuState,
        memory: Memory,
        budget: int,
    ) -> int:
        """The original wrong-path dispatch loop, kept as the reference
        twin of :meth:`run_transient` (DESIGN.md decision 5)."""
        transient_state = state.copy()
        transient_memory = TransientMemory(memory)
        pc = start_pc
        executed = 0

        while executed < budget:
            if not self.program.has_instruction_at(pc):
                break
            instruction = self.program.instruction_at(pc)
            executed += 1
            next_pc = pc + instruction.size

            if isinstance(instruction, Halt):
                break
            if isinstance(instruction, Nop):
                pc = next_pc
            elif isinstance(instruction, MovImm):
                transient_state.write(instruction.dst, instruction.imm)
                pc = next_pc
            elif isinstance(instruction, Mov):
                transient_state.write(instruction.dst,
                                      transient_state.read(instruction.src))
                pc = next_pc
            elif isinstance(instruction, BinaryOp):
                lhs = transient_state.read(instruction.dst)
                rhs = (instruction.imm if instruction.imm is not None
                       else transient_state.read(instruction.src))
                if instruction.set_flags:
                    transient_state.flags = _compute_flags(lhs, rhs)
                if not instruction.cmp_only:
                    transient_state.write(instruction.dst,
                                          instruction.apply(lhs, rhs))
                pc = next_pc
            elif isinstance(instruction, Load):
                address = (transient_state.read(instruction.base)
                           + instruction.offset) & WORD_MASK
                self.hooks.transient_load(address, instruction.width)
                transient_state.write(
                    instruction.dst,
                    transient_memory.read(address, instruction.width),
                )
                pc = next_pc
            elif isinstance(instruction, Store):
                address = (transient_state.read(instruction.base)
                           + instruction.offset) & WORD_MASK
                transient_memory.write(address, instruction.width,
                                       transient_state.read(instruction.src))
                pc = next_pc
            elif isinstance(instruction, PyOp):
                reads = {reg: transient_state.read(reg)
                         for reg in instruction.reads}
                if instruction.touches_memory:
                    writes = instruction.fn(reads, transient_memory)
                else:
                    writes = instruction.fn(reads)
                for reg in instruction.writes:
                    transient_state.write(reg, writes[reg])
                pc = next_pc
            elif isinstance(instruction, CondBranch):
                target = self.program.address_of(instruction.target)
                taken = transient_state.flags.satisfies(instruction.condition)
                pc = target if taken else next_pc
            elif isinstance(instruction, Jump):
                pc = self.program.address_of(instruction.target)
            elif isinstance(instruction, JumpIndirect):
                pc = transient_state.read(instruction.reg)
            elif isinstance(instruction, Call):
                transient_state.call_stack.append(next_pc)
                pc = self.program.address_of(instruction.target)
            elif isinstance(instruction, Ret):
                if not transient_state.call_stack:
                    break
                pc = transient_state.call_stack.pop()
            else:
                break

        return executed
