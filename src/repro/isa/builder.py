"""Fluent construction of programs.

The builder is the ergonomic face of the ISA: victim and attacker code in
the case studies is written against it.  Emit methods append instructions;
``at``/``align`` control placement; ``build`` assembles to a
:class:`~repro.isa.program.Program`.

Layout contract: an instruction's encoded size never depends on its
operand *values* -- only on its type.  Multi-pass assemblers (the fuzz
generator patches label addresses into ``MovImm`` operands on a second
pass) rely on this to reproduce pass one's layout exactly; changing it
means revisiting :func:`repro.fuzz.generator.build_program`.

Two placement caveats ``align``/``at`` users must respect: alignment
gaps contain no instructions, so control flow must *jump* over them
(falling through raises ``ProgramError`` at the first gap address), and
``align`` applies to the next emitted instruction only.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instructions import (
    Align,
    BinaryOp,
    Call,
    CondBranch,
    Condition,
    Halt,
    Instruction,
    Jump,
    JumpIndirect,
    Label,
    Load,
    Mov,
    MovImm,
    Nop,
    PyOp,
    Ret,
    Store,
)
from repro.isa.program import Program

_unique_counter = itertools.count()


def unique_label(prefix: str = "L") -> str:
    """Return a process-unique label name with the given prefix."""
    return f"{prefix}_{next(_unique_counter)}"


class ProgramBuilder:
    """Accumulates instructions and assembles them into a Program."""

    def __init__(self, name: str = "program", base: int = 0x400000):
        self.name = name
        self.base = base
        self._items: List[Tuple[Optional[int], Instruction]] = []
        self._pending_placement: Optional[int] = None
        self._entry_label: Optional[str] = None

    # ----- placement ------------------------------------------------------

    def at(self, address: int) -> "ProgramBuilder":
        """Force the next instruction to be placed at ``address``."""
        self._pending_placement = address
        return self

    def align(self, boundary: int) -> "ProgramBuilder":
        """Align the next instruction to ``boundary`` bytes."""
        self._emit(Align(boundary))
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        self._emit(Label(name))
        return self

    def entry(self, label_name: str) -> "ProgramBuilder":
        """Mark the label to use as the entry point (default: first insn)."""
        self._entry_label = label_name
        return self

    def _emit(self, instruction: Instruction) -> None:
        self._items.append((self._pending_placement, instruction))
        self._pending_placement = None

    def raw(self, instruction: Instruction) -> "ProgramBuilder":
        """Emit a pre-constructed instruction."""
        self._emit(instruction)
        return self

    # ----- data movement and ALU -----------------------------------------

    def mov_imm(self, dst: str, imm: int) -> "ProgramBuilder":
        self._emit(MovImm(dst, imm))
        return self

    def mov(self, dst: str, src: str) -> "ProgramBuilder":
        self._emit(Mov(dst, src))
        return self

    def add(self, dst: str, src: Optional[str] = None, imm: Optional[int] = None,
            set_flags: bool = False) -> "ProgramBuilder":
        self._emit(BinaryOp("add", dst, src=src, imm=imm, set_flags=set_flags))
        return self

    def sub(self, dst: str, src: Optional[str] = None, imm: Optional[int] = None,
            set_flags: bool = False) -> "ProgramBuilder":
        self._emit(BinaryOp("sub", dst, src=src, imm=imm, set_flags=set_flags))
        return self

    def xor(self, dst: str, src: Optional[str] = None,
            imm: Optional[int] = None) -> "ProgramBuilder":
        self._emit(BinaryOp("xor", dst, src=src, imm=imm))
        return self

    def and_(self, dst: str, src: Optional[str] = None,
             imm: Optional[int] = None) -> "ProgramBuilder":
        self._emit(BinaryOp("and", dst, src=src, imm=imm))
        return self

    def shl(self, dst: str, imm: int) -> "ProgramBuilder":
        self._emit(BinaryOp("shl", dst, imm=imm))
        return self

    def shr(self, dst: str, imm: int) -> "ProgramBuilder":
        self._emit(BinaryOp("shr", dst, imm=imm))
        return self

    def mul(self, dst: str, src: Optional[str] = None,
            imm: Optional[int] = None) -> "ProgramBuilder":
        self._emit(BinaryOp("mul", dst, src=src, imm=imm))
        return self

    def cmp(self, a: str, b: Optional[str] = None,
            imm: Optional[int] = None) -> "ProgramBuilder":
        """Compare ``a`` with a register or immediate, setting flags."""
        self._emit(BinaryOp("sub", a, src=b, imm=imm, set_flags=True, cmp_only=True))
        return self

    # ----- memory ----------------------------------------------------------

    def load(self, dst: str, base: str, offset: int = 0,
             width: int = 8) -> "ProgramBuilder":
        self._emit(Load(dst, base, offset, width))
        return self

    def store(self, src: str, base: str, offset: int = 0,
              width: int = 8) -> "ProgramBuilder":
        self._emit(Store(src, base, offset, width))
        return self

    # ----- control flow ----------------------------------------------------

    def branch(self, condition: Condition, target: str) -> "ProgramBuilder":
        self._emit(CondBranch(condition, target))
        return self

    def jeq(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.EQ, target)

    def jne(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.NE, target)

    def jbe(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.BE, target)

    def jlt(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.LT, target)

    def jgt(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.GT, target)

    def jge(self, target: str) -> "ProgramBuilder":
        return self.branch(Condition.GE, target)

    def jmp(self, target: str) -> "ProgramBuilder":
        self._emit(Jump(target))
        return self

    def jmp_reg(self, reg: str) -> "ProgramBuilder":
        self._emit(JumpIndirect(reg))
        return self

    def call(self, target: str) -> "ProgramBuilder":
        self._emit(Call(target))
        return self

    def ret(self) -> "ProgramBuilder":
        self._emit(Ret())
        return self

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self._emit(Nop())
        return self

    def halt(self) -> "ProgramBuilder":
        self._emit(Halt())
        return self

    # ----- escape hatch -----------------------------------------------------

    def pyop(
        self,
        name: str,
        fn: Callable[..., Dict[str, int]],
        reads: Tuple[str, ...] = (),
        writes: Tuple[str, ...] = (),
        touches_memory: bool = False,
    ) -> "ProgramBuilder":
        """Emit a :class:`~repro.isa.instructions.PyOp` data computation."""
        self._emit(PyOp(name, fn, reads=reads, writes=writes,
                        touches_memory=touches_memory))
        return self

    # ----- assembly ----------------------------------------------------------

    def build(self) -> Program:
        """Assemble the accumulated instructions."""
        return Program.assemble(
            self._items, name=self.name, base=self.base, entry_label=self._entry_label
        )
