"""A small x86-flavoured ISA used to express victim and attacker programs.

The Pathfinder attacks only care about the control-flow skeleton of a
program: the addresses of its branch instructions, their targets, and each
dynamic taken/not-taken outcome.  This package provides just enough of an
instruction set to express realistic victims (the Intel-IPP style AES loop
of Listing 1, the libjpeg IDCT of Listing 2, syscall stubs, attacker
harnesses) with byte-accurate control over instruction addresses, which the
branch-footprint function (Figure 2) makes security relevant.
"""

from repro.isa.instructions import (
    Align,
    BinaryOp,
    Condition,
    CondBranch,
    Call,
    Flags,
    Halt,
    Instruction,
    Jump,
    JumpIndirect,
    Label,
    Load,
    MovImm,
    Mov,
    Nop,
    PyOp,
    Ret,
    Store,
)
from repro.isa.program import Program, ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import (
    TRACE_MODES,
    BranchKind,
    BranchRecord,
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
)

__all__ = [
    "Align",
    "BinaryOp",
    "BranchKind",
    "BranchRecord",
    "Call",
    "CondBranch",
    "Condition",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Flags",
    "Halt",
    "Instruction",
    "Interpreter",
    "Jump",
    "JumpIndirect",
    "Label",
    "Load",
    "Mov",
    "MovImm",
    "Nop",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "PyOp",
    "Ret",
    "Store",
    "TRACE_MODES",
]
