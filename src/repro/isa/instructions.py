"""Instruction definitions for the reproduction ISA.

Instructions are small immutable dataclasses.  Each has a byte ``size`` so
the assembler can lay code out at controlled addresses; the default of four
bytes is arbitrary but fixed, and tests pin the layout rules rather than
any particular encoding.

Control-flow instructions carry *labels* which the assembler resolves into
absolute target addresses.  The split between conditional branches,
unconditional direct jumps, indirect jumps, calls and returns mirrors the
branch taxonomy of the paper's Figure 1: every taken branch of any kind
updates the PHR, only conditional branches consult the CBP, and indirect
branches consult the IBP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: Default byte size of an encoded instruction.
DEFAULT_SIZE = 4

#: Machine word width used for all register arithmetic.
WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class Condition(enum.Enum):
    """Branch conditions, evaluated against the flags register."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    #: Unsigned below-or-equal, used by the AES bound check (``jbe``).
    BE = "be"
    #: Unsigned above.
    A = "a"


@dataclass(frozen=True)
class Flags:
    """Result flags produced by :class:`BinaryOp` with ``set_flags``/``Cmp``.

    ``zero`` and ``sign`` are enough to evaluate the signed conditions; the
    unsigned conditions additionally need ``carry`` (borrow out of the
    subtraction).
    """

    zero: bool = False
    sign: bool = False
    carry: bool = False

    def satisfies(self, condition: Condition) -> bool:
        """Return whether these flags satisfy ``condition``."""
        if condition is Condition.EQ:
            return self.zero
        if condition is Condition.NE:
            return not self.zero
        if condition is Condition.LT:
            return self.sign
        if condition is Condition.LE:
            return self.sign or self.zero
        if condition is Condition.GT:
            return not self.sign and not self.zero
        if condition is Condition.GE:
            return not self.sign
        if condition is Condition.BE:
            return self.carry or self.zero
        if condition is Condition.A:
            return not self.carry and not self.zero
        raise ValueError(f"unknown condition {condition!r}")


#: Per-condition flag evaluators, the predecoded twin of
#: :meth:`Flags.satisfies`: the interpreter's predecode pass resolves each
#: conditional branch's condition to one of these callables once, so the
#: hot loop never walks the enum if-chain.  ``satisfies`` stays as the
#: definitional reference; an exhaustive test pins the two identical over
#: every (condition, flags) combination.
CONDITION_EVALUATORS: Dict[Condition, Callable[["Flags"], bool]] = {
    Condition.EQ: lambda flags: flags.zero,
    Condition.NE: lambda flags: not flags.zero,
    Condition.LT: lambda flags: flags.sign,
    Condition.LE: lambda flags: flags.sign or flags.zero,
    Condition.GT: lambda flags: not flags.sign and not flags.zero,
    Condition.GE: lambda flags: not flags.sign,
    Condition.BE: lambda flags: flags.carry or flags.zero,
    Condition.A: lambda flags: not flags.carry and not flags.zero,
}


def compute_flags(lhs: int, rhs: int) -> Flags:
    """Flags of ``lhs - rhs`` over 64-bit unsigned operands."""
    lhs &= WORD_MASK
    rhs &= WORD_MASK
    result = (lhs - rhs) & WORD_MASK
    return Flags(
        zero=result == 0,
        sign=bool(result >> (WORD_BITS - 1)),
        carry=lhs < rhs,
    )


class Instruction:
    """Base class for all instructions.

    Subclasses are dataclasses; the base class only supplies the size
    attribute used by the assembler.
    """

    size: int = DEFAULT_SIZE

    @property
    def is_branch(self) -> bool:
        """Whether this instruction can redirect control flow."""
        return False


@dataclass(frozen=True)
class Label(Instruction):
    """A position marker; occupies no space."""

    name: str
    size: int = field(default=0, repr=False)


@dataclass(frozen=True)
class Align(Instruction):
    """Pad with zero bytes so the *next* instruction starts at a multiple of
    ``boundary`` (which must be a power of two).

    Alignment is how attacker code obtains branches whose low address bits
    are all zero -- the key to the zero-footprint ``Shift_PHR`` macro.
    """

    boundary: int
    size: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.boundary <= 0 or self.boundary & (self.boundary - 1):
            raise ValueError(f"alignment must be a power of two, got {self.boundary}")


@dataclass(frozen=True)
class Nop(Instruction):
    """Do nothing; occupies ``size`` bytes (useful as padding)."""

    size: int = DEFAULT_SIZE


@dataclass(frozen=True)
class MovImm(Instruction):
    """``dst <- imm``"""

    dst: str
    imm: int
    size: int = field(default=DEFAULT_SIZE, repr=False)


@dataclass(frozen=True)
class Mov(Instruction):
    """``dst <- src`` (register to register)."""

    dst: str
    src: str
    size: int = field(default=DEFAULT_SIZE, repr=False)


#: Arithmetic/logic operations supported by :class:`BinaryOp`.
_BINARY_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "mul": lambda a, b: a * b,
}


@dataclass(frozen=True)
class BinaryOp(Instruction):
    """``dst <- op(dst, src_or_imm)``; optionally updates flags.

    ``src`` names a register when ``imm`` is None, otherwise ``imm`` is the
    second operand.  ``cmp_only`` computes flags for ``sub`` without writing
    the destination (the x86 ``cmp``).
    """

    op: str
    dst: str
    src: Optional[str] = None
    imm: Optional[int] = None
    set_flags: bool = False
    cmp_only: bool = False
    size: int = field(default=DEFAULT_SIZE, repr=False)

    def __post_init__(self) -> None:
        if self.op not in _BINARY_FUNCS:
            raise ValueError(f"unknown binary op {self.op!r}")
        if (self.src is None) == (self.imm is None):
            raise ValueError("exactly one of src/imm must be provided")
        if self.cmp_only and self.op != "sub":
            raise ValueError("cmp_only is only meaningful for sub")

    def apply(self, lhs: int, rhs: int) -> int:
        """Compute the raw (unmasked) result of the operation."""
        return _BINARY_FUNCS[self.op](lhs, rhs)


@dataclass(frozen=True)
class Load(Instruction):
    """``dst <- memory[base + offset]`` (``width`` bytes, little-endian).

    Loads go through the simulated data cache, making them visible to the
    flush+reload covert channel.
    """

    dst: str
    base: str
    offset: int = 0
    width: int = 8
    size: int = field(default=DEFAULT_SIZE, repr=False)


@dataclass(frozen=True)
class Store(Instruction):
    """``memory[base + offset] <- src`` (``width`` bytes, little-endian)."""

    src: str
    base: str
    offset: int = 0
    width: int = 8
    size: int = field(default=DEFAULT_SIZE, repr=False)


@dataclass(frozen=True)
class CondBranch(Instruction):
    """A conditional direct branch to ``target`` label.

    This is the only instruction that consults the conditional branch
    predictor.  When taken it also updates the PHR with its footprint.
    """

    condition: Condition
    target: str
    size: int = field(default=DEFAULT_SIZE, repr=False)

    @property
    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Jump(Instruction):
    """An unconditional direct jump (always taken; updates the PHR only)."""

    target: str
    size: int = field(default=DEFAULT_SIZE, repr=False)

    @property
    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class JumpIndirect(Instruction):
    """An indirect jump through a register (predicted by the IBP)."""

    reg: str
    size: int = field(default=DEFAULT_SIZE, repr=False)

    @property
    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Call(Instruction):
    """A direct call: pushes the return address, jumps to ``target``."""

    target: str
    size: int = field(default=DEFAULT_SIZE, repr=False)

    @property
    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Ret(Instruction):
    """Return to the most recent call site (predicted by the RAS)."""

    size: int = field(default=DEFAULT_SIZE, repr=False)

    @property
    def is_branch(self) -> bool:
        return True


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop execution (end of the top-level program)."""

    size: int = field(default=DEFAULT_SIZE, repr=False)


@dataclass(frozen=True)
class PyOp(Instruction):
    """An escape hatch for data computation the ISA does not model.

    ``fn`` receives a mapping of the named ``reads`` registers plus, when
    ``touches_memory`` is set, a ``memory`` object exposing
    ``read(addr, width)`` / ``write(addr, width, value)``; it returns a
    mapping of register name to new value for the ``writes`` registers.
    The AES victim uses this for the ``aesenc``/``aesenclast`` data path
    (the control flow around it stays in real instructions), and the JPEG
    victim for the row/column arithmetic.

    ``PyOp`` memory accesses model register-file-wide SIMD operations and
    deliberately bypass the simulated data cache; anything that must be
    observable through the cache side channel (the flushed round count,
    the probe-array loads) uses real :class:`Load` instructions.  ``PyOp``
    never performs control flow, so it cannot hide branch behaviour from
    the predictor.
    """

    name: str
    fn: Callable[..., Dict[str, int]]
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    touches_memory: bool = False
    size: int = field(default=DEFAULT_SIZE, repr=False)
