"""Program container and address assignment (the "assembler").

A :class:`Program` is an ordered list of instructions placed at explicit
byte addresses.  Layout control matters here far more than in a typical
toy ISA: the PHR footprint of a branch is a function of address bits
B15..B0 and target bits T5..T0 (Figure 2 of the paper), so the attack
macros need branches at, e.g., 64KiB-aligned addresses with 64-byte aligned
targets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.instructions import (
    Align,
    Call,
    CondBranch,
    Instruction,
    Jump,
    Label,
)


class ProgramError(Exception):
    """Raised for malformed programs (duplicate labels, overlap, ...)."""


class Program:
    """An assembled program: instructions at resolved byte addresses.

    Instances are built through :class:`repro.isa.builder.ProgramBuilder`
    (or :meth:`assemble`) and are immutable afterwards.
    """

    def __init__(
        self,
        instructions: Dict[int, Instruction],
        labels: Dict[str, int],
        entry: int,
        name: str = "program",
    ):
        self._instructions = dict(instructions)
        self._labels = dict(labels)
        self._entry = entry
        self.name = name
        #: Lazily compiled threaded-code handler tables (predecode pass).
        #: Programs are immutable after assembly, so the tables never need
        #: invalidation; keys are ``("committed", trace_mode)`` and
        #: ``"transient"``.
        self._predecoded: Dict[object, Dict[int, object]] = {}
        self._validate()

    def _validate(self) -> None:
        for label, address in self._labels.items():
            if address not in self._instructions:
                raise ProgramError(
                    f"label {label!r} points at {address:#x}, which holds no instruction"
                )
        if self._entry not in self._instructions:
            raise ProgramError(f"entry point {self._entry:#x} holds no instruction")
        for address, instruction in self._instructions.items():
            target = getattr(instruction, "target", None)
            if target is not None and target not in self._labels:
                raise ProgramError(
                    f"instruction at {address:#x} targets unknown label {target!r}"
                )

    @property
    def entry(self) -> int:
        """Address of the first instruction to execute."""
        return self._entry

    @property
    def labels(self) -> Dict[str, int]:
        """Label name to address mapping (copy)."""
        return dict(self._labels)

    def address_of(self, label: str) -> int:
        """Resolve ``label`` to its address."""
        try:
            return self._labels[label]
        except KeyError:
            raise ProgramError(f"unknown label {label!r}") from None

    def instruction_at(self, address: int) -> Instruction:
        """Return the instruction at ``address``."""
        try:
            return self._instructions[address]
        except KeyError:
            raise ProgramError(f"no instruction at {address:#x}") from None

    def has_instruction_at(self, address: int) -> bool:
        """Whether an instruction exists at ``address``."""
        return address in self._instructions

    def next_address(self, address: int) -> int:
        """Address of the instruction physically following ``address``."""
        instruction = self.instruction_at(address)
        return address + instruction.size

    def committed_handlers(self, trace_mode: str = "full"):
        """The predecoded committed-path handler table for ``trace_mode``.

        Compiled on first use (one closure per static instruction, label
        targets and fallthroughs resolved to absolute addresses) and
        cached for the program's lifetime; see :mod:`repro.isa.predecode`.
        """
        key = ("committed", trace_mode)
        table = self._predecoded.get(key)
        if table is None:
            from repro.isa.predecode import compile_committed

            table = compile_committed(self, trace_mode)
            self._predecoded[key] = table
        return table

    def transient_handlers(self):
        """The predecoded wrong-path handler table (compiled on first use)."""
        table = self._predecoded.get("transient")
        if table is None:
            from repro.isa.predecode import compile_transient

            table = compile_transient(self)
            self._predecoded["transient"] = table
        return table

    def items(self) -> Iterator[Tuple[int, Instruction]]:
        """Iterate ``(address, instruction)`` in ascending address order."""
        return iter(sorted(self._instructions.items()))

    def __len__(self) -> int:
        return len(self._instructions)

    def branch_addresses(self) -> List[int]:
        """Addresses of all control-flow instructions, ascending."""
        return [addr for addr, ins in self.items() if ins.is_branch]

    def branch_target(self, address: int) -> Optional[int]:
        """Resolved target address of the direct branch at ``address``.

        Returns None for indirect jumps and returns, whose targets are
        dynamic.
        """
        instruction = self.instruction_at(address)
        target = getattr(instruction, "target", None)
        if target is None:
            return None
        return self.address_of(target)

    @classmethod
    def assemble(
        cls,
        items: Iterable[Tuple[Optional[int], Instruction]],
        name: str = "program",
        base: int = 0x400000,
        entry_label: Optional[str] = None,
    ) -> "Program":
        """Assign addresses to a stream of ``(placement, instruction)``.

        ``placement`` of None means "directly after the previous
        instruction"; an integer forces an absolute address (which must not
        move backwards over already-emitted code).  :class:`Align` and
        :class:`Label` consume no space.
        """
        instructions: Dict[int, Instruction] = {}
        labels: Dict[str, int] = {}
        cursor = base
        high_water = base
        pending_labels: List[str] = []
        first_address: Optional[int] = None

        for placement, instruction in items:
            if placement is not None:
                if placement < high_water:
                    raise ProgramError(
                        f"placement {placement:#x} overlaps code ending at {high_water:#x}"
                    )
                cursor = placement
            if isinstance(instruction, Align):
                boundary = instruction.boundary
                cursor = (cursor + boundary - 1) & ~(boundary - 1)
                continue
            if isinstance(instruction, Label):
                if instruction.name in labels or instruction.name in pending_labels:
                    raise ProgramError(f"duplicate label {instruction.name!r}")
                pending_labels.append(instruction.name)
                continue
            for label in pending_labels:
                labels[label] = cursor
            pending_labels.clear()
            if cursor in instructions:
                raise ProgramError(f"two instructions at {cursor:#x}")
            instructions[cursor] = instruction
            if first_address is None:
                first_address = cursor
            cursor += instruction.size
            high_water = max(high_water, cursor)

        if pending_labels:
            raise ProgramError(f"labels at end of program: {pending_labels}")
        if first_address is None:
            raise ProgramError("cannot assemble an empty program")
        entry = labels[entry_label] if entry_label is not None else first_address
        return cls(instructions, labels, entry, name=name)

    def disassemble(self) -> str:
        """Human-readable listing, one instruction per line."""
        address_to_labels: Dict[int, List[str]] = {}
        for label, address in self._labels.items():
            address_to_labels.setdefault(address, []).append(label)
        lines: List[str] = []
        for address, instruction in self.items():
            for label in sorted(address_to_labels.get(address, [])):
                lines.append(f"{label}:")
            lines.append(f"  {address:#010x}: {instruction!r}")
        return "\n".join(lines)


def conditional_branches(program: Program) -> List[int]:
    """Addresses of the conditional branches in ``program``."""
    return [
        addr
        for addr, ins in program.items()
        if isinstance(ins, CondBranch)
    ]


def unconditional_branches(program: Program) -> List[int]:
    """Addresses of unconditional direct jumps/calls in ``program``."""
    return [
        addr
        for addr, ins in program.items()
        if isinstance(ins, (Jump, Call))
    ]
