"""Byte-addressable flat memory, plus the transient store-buffer overlay.

Memory values are little-endian, matching the x86 victims the paper
targets.  The overlay class supports speculative execution: wrong-path
stores must be invisible after the squash, while wrong-path loads must see
earlier wrong-path stores.
"""

from __future__ import annotations

from typing import Dict, Iterable


class Memory:
    """Sparse byte-addressable memory."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def read(self, address: int, width: int) -> int:
        """Read ``width`` bytes at ``address`` as a little-endian integer."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        value = 0
        for i in range(width):
            value |= self._bytes.get(address + i, 0) << (8 * i)
        return value

    def write(self, address: int, width: int, value: int) -> None:
        """Write ``width`` bytes of ``value`` at ``address``, little-endian."""
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        for i in range(width):
            self._bytes[address + i] = (value >> (8 * i)) & 0xFF

    def read_bytes(self, address: int, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        data = self._bytes
        return bytes([data.get(a, 0) for a in range(address, address + count)])

    def write_bytes(self, address: int, data: Iterable[int]) -> None:
        """Write raw bytes starting at ``address``."""
        if isinstance(data, (bytes, bytearray)):
            # Already byte-ranged; one C-level bulk update.
            self._bytes.update(zip(range(address, address + len(data)), data))
            return
        for i, byte_value in enumerate(data):
            self._bytes[address + i] = byte_value & 0xFF

    def snapshot(self) -> Dict[int, int]:
        """A copy of the populated bytes (for test assertions)."""
        return dict(self._bytes)

    def clone(self) -> "Memory":
        """An independent copy (checkpointing for prefix+suffix replay)."""
        copy = Memory()
        copy._bytes = dict(self._bytes)
        return copy


class TransientMemory:
    """A store-buffer overlay over a :class:`Memory`.

    Used while executing a mispredicted (wrong) path: loads read through to
    the architectural memory unless an earlier wrong-path store covered the
    byte; stores never reach the underlying memory.
    """

    def __init__(self, underlying: Memory):
        self._underlying = underlying
        self._overlay: Dict[int, int] = {}

    def read(self, address: int, width: int) -> int:
        value = 0
        for i in range(width):
            byte_addr = address + i
            if byte_addr in self._overlay:
                byte_value = self._overlay[byte_addr]
            else:
                byte_value = self._underlying.read(byte_addr, 1)
            value |= byte_value << (8 * i)
        return value

    def write(self, address: int, width: int, value: int) -> None:
        for i in range(width):
            self._overlay[address + i] = (value >> (8 * i)) & 0xFF

    def read_bytes(self, address: int, count: int) -> bytes:
        overlay = self._overlay
        backing = self._underlying._bytes
        return bytes([
            overlay[a] if a in overlay else backing.get(a, 0)
            for a in range(address, address + count)
        ])

    def write_bytes(self, address: int, data: Iterable[int]) -> None:
        if isinstance(data, (bytes, bytearray)):
            self._overlay.update(zip(range(address, address + len(data)), data))
            return
        for i, byte_value in enumerate(data):
            self._overlay[address + i] = byte_value & 0xFF
