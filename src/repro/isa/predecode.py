"""Predecoded threaded-code compilation for the reproduction ISA.

The reference interpreter (`Interpreter.run_reference`) walks an
``isinstance`` chain for every dynamic instruction and re-resolves each
branch label through ``Program.address_of``.  Every end-to-end experiment
(the Fig 6 AES attack, the Fig 7 libjpeg recovery, the Section 10
mitigation sweeps) funnels millions of dynamic instructions through that
loop, so this module compiles each *static* instruction once into a bound
handler closure:

* opcode dispatch disappears -- each address maps straight to a handler;
* label targets are resolved to absolute addresses at compile time;
* the fallthrough ``next_pc`` is precomputed from ``instruction.size``;
* per-instruction constants (register names, immediates, binary-op
  functions, condition evaluators) are bound into the closure, and hot
  attribute walks (``state.read``/``state.write`` method calls, the
  ``Flags.satisfies`` enum chain) are flattened to direct dict/attr ops.

Two tables are compiled per program -- one for the committed path and one
for the transient (wrong-path) path -- and cached on the ``Program``
(compilation is pure: programs are immutable after assembly).  Committed
handlers have the signature ``handler(state, memory, hooks, trace) ->
next_pc | None`` (``None`` terminates the run); transient handlers take
``(state, memory, hooks)`` where ``memory`` is the store-buffer overlay.

Per DESIGN.md decision 5 the dispatch-loop twins survive as
``Interpreter.run_reference`` / ``run_transient_reference`` and property
tests (tests/test_interpreter_equivalence.py) pin the compiled handlers
bit-identical to them -- registers, flags, memory, trace, perf-counter
deltas and transient-executed counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.isa.instructions import (
    _BINARY_FUNCS,
    CONDITION_EVALUATORS,
    WORD_MASK,
    BinaryOp,
    compute_flags as _compute_flags_fast,
    Call,
    CondBranch,
    Halt,
    Instruction,
    Jump,
    JumpIndirect,
    Load,
    Mov,
    MovImm,
    Nop,
    PyOp,
    Ret,
    Store,
)
from repro.isa.program import Program, ProgramError

#: Valid ``trace=`` modes for a committed run: ``"full"`` records every
#: dynamic branch, ``"branches"`` only conditional branches (what the CBP
#: sees), ``"none"`` skips BranchRecord allocation entirely.  Hooks fire
#: identically in all three modes.
TRACE_MODES = ("full", "branches", "none")


class BranchKind(enum.Enum):
    """Taxonomy of control transfers, mirroring the paper's Figure 1."""

    CONDITIONAL = "conditional"
    JUMP = "jump"
    INDIRECT = "indirect"
    CALL = "call"
    RET = "ret"


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic branch outcome.

    ``target`` is the taken destination (for conditional branches, the
    destination the branch would go to when taken, even if this instance
    fell through); ``next_pc`` is where execution actually continued.
    """

    pc: int
    kind: BranchKind
    taken: bool
    target: int
    fallthrough: int
    next_pc: int


#: Committed handler: ``(state, memory, hooks, trace) -> next_pc | None``.
CommittedHandler = Callable[..., Optional[int]]
#: Transient handler: ``(state, memory, hooks) -> next_pc | None``.
TransientHandler = Callable[..., Optional[int]]


# ----------------------------------------------------------------------
# committed-path compilation
# ----------------------------------------------------------------------

def compile_committed(program: Program,
                      trace_mode: str = "full") -> Dict[int, CommittedHandler]:
    """Compile ``program`` into a per-address committed handler table."""
    if trace_mode not in TRACE_MODES:
        raise ValueError(
            f"unknown trace mode {trace_mode!r}; pick one of {TRACE_MODES}"
        )
    record_cond = trace_mode in ("full", "branches")
    record_uncond = trace_mode == "full"
    return {
        address: _compile_committed_one(program, address, instruction,
                                        record_cond, record_uncond)
        for address, instruction in program.items()
    }


def _compile_committed_one(program: Program, pc: int, instruction: Instruction,
                           record_cond: bool,
                           record_uncond: bool) -> CommittedHandler:
    next_pc = pc + instruction.size

    if isinstance(instruction, Halt):
        def handler(state, memory, hooks, trace):
            hooks.instruction_retired(pc)
            return None
        return handler

    if isinstance(instruction, Nop):
        def handler(state, memory, hooks, trace):
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, MovImm):
        dst = instruction.dst
        imm = instruction.imm & WORD_MASK

        def handler(state, memory, hooks, trace):
            state.regs[dst] = imm
            state.reg_latency[dst] = 0
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, Mov):
        dst, src = instruction.dst, instruction.src

        def handler(state, memory, hooks, trace):
            state.regs[dst] = state.regs.get(src, 0)
            state.reg_latency[dst] = state.reg_latency.get(src, 0)
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, BinaryOp):
        fn = _BINARY_FUNCS[instruction.op]
        dst, src, imm = instruction.dst, instruction.src, instruction.imm
        set_flags, write_back = instruction.set_flags, not instruction.cmp_only
        compute = _compute_flags_fast

        if imm is not None:
            def handler(state, memory, hooks, trace):
                regs = state.regs
                lhs = regs.get(dst, 0)
                latency = state.reg_latency.get(dst, 0)
                if latency < 0:
                    latency = 0
                if set_flags:
                    state.flags = compute(lhs, imm)
                    state.flags_latency = latency
                if write_back:
                    regs[dst] = fn(lhs, imm) & WORD_MASK
                    state.reg_latency[dst] = latency
                hooks.instruction_retired(pc)
                return next_pc
        else:
            def handler(state, memory, hooks, trace):
                regs = state.regs
                reg_latency = state.reg_latency
                lhs = regs.get(dst, 0)
                rhs = regs.get(src, 0)
                latency = max(reg_latency.get(dst, 0), reg_latency.get(src, 0))
                if set_flags:
                    state.flags = compute(lhs, rhs)
                    state.flags_latency = latency
                if write_back:
                    regs[dst] = fn(lhs, rhs) & WORD_MASK
                    reg_latency[dst] = latency
                hooks.instruction_retired(pc)
                return next_pc
        return handler

    if isinstance(instruction, Load):
        dst, base = instruction.dst, instruction.base
        offset, width = instruction.offset, instruction.width

        def handler(state, memory, hooks, trace):
            address = (state.regs.get(base, 0) + offset) & WORD_MASK
            latency = hooks.load(address, width)
            state.regs[dst] = memory.read(address, width) & WORD_MASK
            state.reg_latency[dst] = latency
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, Store):
        src, base = instruction.src, instruction.base
        offset, width = instruction.offset, instruction.width

        def handler(state, memory, hooks, trace):
            address = (state.regs.get(base, 0) + offset) & WORD_MASK
            memory.write(address, width, state.regs.get(src, 0))
            hooks.store(address, width)
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, PyOp):
        fn, name = instruction.fn, instruction.name
        reads, writes = instruction.reads, instruction.writes
        touches_memory = instruction.touches_memory

        def handler(state, memory, hooks, trace):
            regs = state.regs
            values = {reg: regs.get(reg, 0) for reg in reads}
            produced = fn(values, memory) if touches_memory else fn(values)
            for reg in writes:
                if reg not in produced:
                    raise ProgramError(
                        f"PyOp {name!r} did not produce {reg!r}"
                    )
                regs[reg] = produced[reg] & WORD_MASK
                state.reg_latency[reg] = 0
            hooks.instruction_retired(pc)
            return next_pc
        return handler

    if isinstance(instruction, CondBranch):
        target = program.address_of(instruction.target)
        evaluate = CONDITION_EVALUATORS[instruction.condition]
        kind = BranchKind.CONDITIONAL
        record = BranchRecord

        if record_cond:
            def handler(state, memory, hooks, trace):
                taken = evaluate(state.flags)
                hooks.conditional_branch(pc, target, next_pc, taken,
                                         state.flags_latency)
                actual_next = target if taken else next_pc
                trace.append(record(pc, kind, taken, target, next_pc,
                                    actual_next))
                hooks.instruction_retired(pc)
                return actual_next
        else:
            def handler(state, memory, hooks, trace):
                taken = evaluate(state.flags)
                hooks.conditional_branch(pc, target, next_pc, taken,
                                         state.flags_latency)
                hooks.instruction_retired(pc)
                return target if taken else next_pc
        return handler

    if isinstance(instruction, Jump):
        target = program.address_of(instruction.target)
        kind = BranchKind.JUMP
        record = BranchRecord

        if record_uncond:
            def handler(state, memory, hooks, trace):
                hooks.unconditional_branch(pc, target, kind, next_pc)
                trace.append(record(pc, kind, True, target, next_pc, target))
                hooks.instruction_retired(pc)
                return target
        else:
            def handler(state, memory, hooks, trace):
                hooks.unconditional_branch(pc, target, kind, next_pc)
                hooks.instruction_retired(pc)
                return target
        return handler

    if isinstance(instruction, JumpIndirect):
        reg = instruction.reg
        kind = BranchKind.INDIRECT
        record = BranchRecord

        if record_uncond:
            def handler(state, memory, hooks, trace):
                target = state.regs.get(reg, 0)
                hooks.unconditional_branch(pc, target, kind, next_pc)
                trace.append(record(pc, kind, True, target, next_pc, target))
                hooks.instruction_retired(pc)
                return target
        else:
            def handler(state, memory, hooks, trace):
                target = state.regs.get(reg, 0)
                hooks.unconditional_branch(pc, target, kind, next_pc)
                hooks.instruction_retired(pc)
                return target
        return handler

    if isinstance(instruction, Call):
        target = program.address_of(instruction.target)
        kind = BranchKind.CALL
        record = BranchRecord

        if record_uncond:
            def handler(state, memory, hooks, trace):
                state.call_stack.append(next_pc)
                hooks.unconditional_branch(pc, target, kind, next_pc)
                trace.append(record(pc, kind, True, target, next_pc, target))
                hooks.instruction_retired(pc)
                return target
        else:
            def handler(state, memory, hooks, trace):
                state.call_stack.append(next_pc)
                hooks.unconditional_branch(pc, target, kind, next_pc)
                hooks.instruction_retired(pc)
                return target
        return handler

    if isinstance(instruction, Ret):
        kind = BranchKind.RET
        record = BranchRecord

        if record_uncond:
            def handler(state, memory, hooks, trace):
                stack = state.call_stack
                if not stack:
                    hooks.instruction_retired(pc)
                    return None
                target = stack.pop()
                hooks.unconditional_branch(pc, target, kind, next_pc)
                trace.append(record(pc, kind, True, target, next_pc, target))
                hooks.instruction_retired(pc)
                return target
        else:
            def handler(state, memory, hooks, trace):
                stack = state.call_stack
                if not stack:
                    hooks.instruction_retired(pc)
                    return None
                target = stack.pop()
                hooks.unconditional_branch(pc, target, kind, next_pc)
                hooks.instruction_retired(pc)
                return target
        return handler

    def handler(state, memory, hooks, trace):
        raise ProgramError(f"cannot execute {instruction!r} at {pc:#x}")
    return handler


# ----------------------------------------------------------------------
# transient-path compilation
# ----------------------------------------------------------------------

def compile_transient(program: Program) -> Dict[int, TransientHandler]:
    """Compile ``program`` into a per-address wrong-path handler table.

    Transient handlers operate on the sandboxed register-state copy and
    the store-buffer memory overlay; only ``hooks.transient_load`` is
    reported.  A ``None`` return stops the wrong path (halt, return from
    an empty speculative call stack, or an uninterpretable instruction);
    the caller stops on unmapped addresses before invoking any handler.
    """
    return {
        address: _compile_transient_one(program, address, instruction)
        for address, instruction in program.items()
    }


def _compile_transient_one(program: Program, pc: int,
                           instruction: Instruction) -> TransientHandler:
    next_pc = pc + instruction.size

    if isinstance(instruction, Nop):
        def handler(state, memory, hooks):
            return next_pc
        return handler

    if isinstance(instruction, MovImm):
        dst = instruction.dst
        imm = instruction.imm & WORD_MASK

        def handler(state, memory, hooks):
            state.regs[dst] = imm
            return next_pc
        return handler

    if isinstance(instruction, Mov):
        dst, src = instruction.dst, instruction.src

        def handler(state, memory, hooks):
            state.regs[dst] = state.regs.get(src, 0)
            return next_pc
        return handler

    if isinstance(instruction, BinaryOp):
        fn = _BINARY_FUNCS[instruction.op]
        dst, src, imm = instruction.dst, instruction.src, instruction.imm
        set_flags, write_back = instruction.set_flags, not instruction.cmp_only
        compute = _compute_flags_fast

        def handler(state, memory, hooks):
            regs = state.regs
            lhs = regs.get(dst, 0)
            rhs = imm if imm is not None else regs.get(src, 0)
            if set_flags:
                state.flags = compute(lhs, rhs)
            if write_back:
                regs[dst] = fn(lhs, rhs) & WORD_MASK
            return next_pc
        return handler

    if isinstance(instruction, Load):
        dst, base = instruction.dst, instruction.base
        offset, width = instruction.offset, instruction.width

        def handler(state, memory, hooks):
            address = (state.regs.get(base, 0) + offset) & WORD_MASK
            hooks.transient_load(address, width)
            state.regs[dst] = memory.read(address, width) & WORD_MASK
            return next_pc
        return handler

    if isinstance(instruction, Store):
        src, base = instruction.src, instruction.base
        offset, width = instruction.offset, instruction.width

        def handler(state, memory, hooks):
            address = (state.regs.get(base, 0) + offset) & WORD_MASK
            memory.write(address, width, state.regs.get(src, 0))
            return next_pc
        return handler

    if isinstance(instruction, PyOp):
        fn = instruction.fn
        reads, writes = instruction.reads, instruction.writes
        touches_memory = instruction.touches_memory

        def handler(state, memory, hooks):
            regs = state.regs
            values = {reg: regs.get(reg, 0) for reg in reads}
            produced = fn(values, memory) if touches_memory else fn(values)
            for reg in writes:
                regs[reg] = produced[reg] & WORD_MASK
            return next_pc
        return handler

    if isinstance(instruction, CondBranch):
        target = program.address_of(instruction.target)
        evaluate = CONDITION_EVALUATORS[instruction.condition]

        def handler(state, memory, hooks):
            return target if evaluate(state.flags) else next_pc
        return handler

    if isinstance(instruction, Jump):
        target = program.address_of(instruction.target)

        def handler(state, memory, hooks):
            return target
        return handler

    if isinstance(instruction, JumpIndirect):
        reg = instruction.reg

        def handler(state, memory, hooks):
            return state.regs.get(reg, 0)
        return handler

    if isinstance(instruction, Call):
        target = program.address_of(instruction.target)

        def handler(state, memory, hooks):
            state.call_stack.append(next_pc)
            return target
        return handler

    if isinstance(instruction, Ret):
        def handler(state, memory, hooks):
            stack = state.call_stack
            if not stack:
                return None
            return stack.pop()
        return handler

    # Halt and anything uninterpretable stop the wrong path (after the
    # budget accounting the caller already performed).
    def handler(state, memory, hooks):
        return None
    return handler
