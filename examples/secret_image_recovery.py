"""Section 8 demo: steal a secret image from the JPEG decoder's branches.

A victim process decodes a secret image.  The attacker captures the
*entire* control-flow history of the libjpeg-style IDCT routine with
Extended Read PHR, reconstructs the executed path with Pathfinder, and
renders the per-block complexity map -- which, as the paper shows,
resembles an edge detection of the original.

Run:  python examples/secret_image_recovery.py [image_name]
"""

import sys

from repro import Machine, RAPTOR_LAKE
from repro.jpeg import ImageRecoveryAttack, JpegCodec
from repro.jpeg.images import ascii_render, evaluation_images


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "qr_code"
    images = evaluation_images(size=48)
    if name not in images:
        raise SystemExit(f"unknown image {name!r}; pick one of "
                         f"{sorted(images)}")
    secret = images[name]

    codec = JpegCodec(quality=75)
    encoded = codec.encode(secret)
    print(f"secret image: {name} ({secret.shape[0]}x{secret.shape[1]}, "
          f"{encoded.block_count} JPEG blocks)")

    machine = Machine(RAPTOR_LAKE)
    attack = ImageRecoveryAttack(machine, codec)
    recovered = attack.recover(encoded)
    truth = attack.ground_truth_map(secret)

    print(f"captured control flow: {recovered.recovered_branches} branches "
          f"({recovered.probes} PHT probes)")
    print(f"block-map exact match: "
          f"{attack.exact_match_rate(recovered.complexity_map, truth):.1%}")
    print(f"similarity (Pearson) : "
          f"{attack.similarity(recovered.complexity_map, truth):.3f}")

    print()
    print("original                          recovered (complexity map)")
    left = ascii_render(secret, width=32)
    right = ascii_render(recovered.as_image(), width=32)
    for a, b in zip(left, right):
        print(f"{a}  {b}")


if __name__ == "__main__":
    main()
