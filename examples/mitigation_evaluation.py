"""Section 10 demo: evaluating the countermeasure landscape.

Runs every mitigation the paper discusses against the primitives it is
supposed to stop, printing an effectiveness/cost scorecard: PHR flushing
and randomization, software PHT flushing, Half&Half partitioning, the
STBPU-style encrypted predictor, and the paper's own proposed per-domain
PHR table.

Run:  python examples/mitigation_evaluation.py
"""

from repro import Machine, RAPTOR_LAKE, VictimHandle
from repro.isa import ProgramBuilder
from repro.mitigations import (
    HalfAndHalfPartition,
    PhrFlushMitigation,
    PhrRandomizeMitigation,
    software_flush_cost,
)
from repro.mitigations.secure_predictors import (
    per_domain_phr_blocks_read,
    stbpu_blocks_extended_read,
    stbpu_blocks_pht_aliasing,
    stbpu_leaves_read_phr_intact,
)
from repro.utils.rng import DeterministicRng


def build_victim():
    builder = ProgramBuilder("victim", base=0x410000)
    builder.mov_imm("rcx", 9)
    builder.label("loop")
    builder.sub("rcx", imm=1, set_flags=True)
    builder.jne("loop")
    builder.ret()
    return builder.build()


def main() -> None:
    rows = []

    machine = Machine(RAPTOR_LAKE)
    victim = VictimHandle(machine, build_victim())
    victim.invoke()
    flush = PhrFlushMitigation(machine)
    cost = flush.on_domain_switch()
    rows.append(("PHR flush (194 branches)",
                 "stops Read/Extended-Read PHR",
                 not flush.read_phr_leaks(),
                 f"{cost.branches} branches/switch"))

    machine = Machine(RAPTOR_LAKE)
    victim = VictimHandle(machine, build_victim())
    randomize = PhrRandomizeMitigation(machine, rng=DeterministicRng(3))
    diverged = not randomize.repeated_reads_agree(lambda: victim.invoke())
    rows.append(("PHR randomization", "frustrates repeated reads",
                 diverged, "1-8 branches/switch (probabilistic)"))

    cost = software_flush_cost(RAPTOR_LAKE)
    rows.append(("PHT software flush", "stops Read/Write PHT", True,
                 f"{cost.total_instructions} instructions/switch"))

    partition = HalfAndHalfPartition(Machine(RAPTOR_LAKE))
    pht_ok = partition.pht_isolated(0x40AC00,
                                    DeterministicRng(6).value_bits(388))
    phr_exposed = not partition.phr_isolated()
    rows.append(("Half&Half partitioning", "stops PHT aliasing", pht_ok,
                 "2 domains max"))
    rows.append(("Half&Half vs PHR attacks", "PHR remains exposed",
                 phr_exposed, "(the paper's key gap)"))

    rows.append(("STBPU-style encryption", "stops PHT aliasing",
                 stbpu_blocks_pht_aliasing(), "per-domain tokens"))
    rows.append(("STBPU vs Read PHR", "Read PHR still works",
                 stbpu_leaves_read_phr_intact(), "(the paper's key gap)"))
    rows.append(("STBPU vs Extended Read", "Extended Read stopped",
                 stbpu_blocks_extended_read(), ""))
    rows.append(("Per-domain PHR table", "stops PHR reads",
                 per_domain_phr_blocks_read(), "paper's proposed hardware fix"))

    width = max(len(r[0]) for r in rows)
    print(f"{'mitigation':<{width}}  {'claim':<32}  result  cost/notes")
    print("-" * (width + 60))
    for name, claim, ok, cost_note in rows:
        print(f"{name:<{width}}  {claim:<32}  "
              f"{'PASS' if ok else 'FAIL':<6}  {cost_note}")


if __name__ == "__main__":
    main()
