"""Figure 6 demo: Pathfinder's annotated CFG of the looped AES victim.

Reproduces the paper's Figure 6 scenario: run the AES-NI looped
encryption once, read the PHR it leaves behind, and let Pathfinder
reconstruct the runtime CFG -- entry block, loop body iterated nine
times, fix-up block, exit -- from nothing but the folded history.

Run:  python examples/pathfinder_cfg.py
"""

from repro import ControlFlowGraph, Machine, PathSearch, RAPTOR_LAKE
from repro.aes.victim import AesVictim
from repro.cpu.phr import replay_taken_branches
from repro.isa.interpreter import CpuState
from repro.isa.memory import Memory
from repro.pathfinder.report import build_report, dynamic_edge_counts, render_cfg


def main() -> None:
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    victim = AesVictim(key)
    machine = Machine(RAPTOR_LAKE)

    memory = Memory()
    victim.provision(memory, plaintext=bytes(16))
    machine.clear_phr()
    result = machine.run(victim.program, state=CpuState(), memory=memory,
                         entry=victim.program.address_of("aes_encrypt"))
    taken = [(r.pc, r.target) for r in result.trace if r.taken]
    history = replay_taken_branches(len(taken), taken).doublets()
    print(f"victim ran: {len(result.trace)} dynamic branches, "
          f"{len(taken)} taken")

    cfg = ControlFlowGraph(victim.program,
                           entry=victim.program.address_of("aes_encrypt"))
    search = PathSearch(cfg, mode="exact")
    paths = search.search(history)
    print(f"Pathfinder: {len(paths)} path(s) match the observed history "
          f"({search.explored} states explored)")

    path = paths[0]
    report = build_report(cfg, path)
    print()
    print(render_cfg(cfg, path))
    print()
    loop_block = victim.loop_block_start
    print(f"loop body iterations recovered: "
          f"{report.loop_iterations(loop_block)} "
          "(paper Figure 6: 'it iterates nine times')")
    print(f"dynamic edges: {dynamic_edge_counts(path)}")
    print()
    print("per-iteration PHR at the loop branch (poisoning coordinates):")
    iteration = 0
    for block, value in report.phr_at_block:
        if block == loop_block:
            iteration += 1
            print(f"  iteration {iteration}: PHR low bits "
                  f"{value & 0xFFFFFFFFFF:#012x}")


if __name__ == "__main__":
    main()
