"""Quickstart: the CBP as a read/write scratchpad.

Builds a tiny victim with a secret-dependent loop, runs it on the
simulated machine, and uses the paper's primitives to (1) read the PHR it
left behind, (2) reconstruct its control flow with Pathfinder, and
(3) plant a branch prediction with Write_PHT.

Run:  python examples/quickstart.py
"""

from repro import (
    ControlFlowGraph,
    Machine,
    PathSearch,
    PhrReader,
    PhtWriter,
    RAPTOR_LAKE,
    VictimHandle,
)
from repro.cpu.phr import replay_taken_branches
from repro.isa import ProgramBuilder
from repro.pathfinder.report import build_report, render_cfg


def build_victim(secret_iterations: int):
    """A loop whose trip count is the 'secret'."""
    builder = ProgramBuilder("victim", base=0x410000)
    builder.mov_imm("rcx", secret_iterations)
    builder.label("loop")
    builder.sub("rcx", imm=1, set_flags=True)
    builder.jne("loop")
    builder.ret()
    return builder.build()


def main() -> None:
    secret = 12
    machine = Machine(RAPTOR_LAKE)
    victim_program = build_victim(secret)
    victim = VictimHandle(machine, victim_program)

    print("=== 1. Read_PHR: leak the victim's path history ===")
    reader = PhrReader(machine, victim)
    result = reader.read(count=24)
    truth = replay_taken_branches(194, victim.taken_branches())
    print(f"recovered doublets : {result.doublets}")
    print(f"ground truth       : {truth.doublets()[:24]}")
    print(f"match              : {result.doublets == truth.doublets()[:24]}")
    print(f"attack iterations  : {result.iterations}")

    print()
    print("=== 2. Pathfinder: history -> control flow ===")
    taken = victim.taken_branches()
    history = replay_taken_branches(len(taken), taken).doublets()
    cfg = ControlFlowGraph(victim_program)
    paths = PathSearch(cfg, mode="exact").search(history)
    report = build_report(cfg, paths[0])
    loop_block = victim_program.address_of("loop")
    print(render_cfg(cfg, paths[0]))
    print(f"recovered secret loop count: "
          f"{report.loop_iterations(loop_block)} (actual {secret})")

    print()
    print("=== 3. Write_PHT: plant a prediction at one (PC, PHR) ===")
    loop_branch = victim_program.address_of("loop")
    branch_pc = [pc for pc, __ in report.branch_outcomes][0]
    phr_at_iteration_3 = report.phr_at_block[3][1]
    writer = PhtWriter(machine)
    writer.write(branch_pc, phr_at_iteration_3, taken=False)
    machine.phr(0).set_value(phr_at_iteration_3)
    prediction = machine.cbp.predict(branch_pc, machine.phr(0))
    print(f"prediction at poisoned coordinate: "
          f"{'taken' if prediction.taken else 'NOT taken'} (planted: NOT taken)")
    del loop_branch


if __name__ == "__main__":
    main()
