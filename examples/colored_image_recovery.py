"""Figure 7 "colored" demo: recover chromatic structure from a color JPEG.

Color JPEG decodes run the same IDCT over three component planes
(luminance + two subsampled chroma planes), so the control-flow attack
captures all three.  The per-plane complexity maps compose into the
paper's colored recovery: gray where only brightness varies, tinted
where color edges live.

Run:  python examples/colored_image_recovery.py
"""

import numpy as np

from repro import Machine, RAPTOR_LAKE
from repro.jpeg import ColorImageRecoveryAttack
from repro.jpeg.images import ascii_render


def secret_color_scene(size: int = 48) -> np.ndarray:
    """A scene with both luminance and chrominance structure."""
    yy, xx = np.mgrid[0:size, 0:size]
    rgb = np.zeros((size, size, 3))
    rgb[:, :, 0] = rgb[:, :, 1] = rgb[:, :, 2] = 170.0   # gray backdrop
    # A red disc (pure chroma edge against equal luminance).
    disc = (yy - size * 0.35) ** 2 + (xx - size * 0.3) ** 2 < (size * 0.2) ** 2
    rgb[disc] = [200.0, 60.0, 60.0]
    # A dark square (pure luminance edge).
    rgb[int(size * 0.55):int(size * 0.85),
        int(size * 0.55):int(size * 0.85)] = 40.0
    # A blue stripe.
    rgb[:, int(size * 0.8):int(size * 0.9)] = [60.0, 60.0, 220.0]
    return rgb


def main() -> None:
    secret = secret_color_scene(48)
    attack = ColorImageRecoveryAttack(lambda: Machine(RAPTOR_LAKE),
                                      quality=75)
    encoded = attack.codec.encode(secret)
    print(f"secret color image: 48x48, {encoded.total_blocks} blocks "
          f"across Y/Cb/Cr, {encoded.compressed_bytes} compressed bytes")

    results = attack.recover(encoded)
    for plane in ("luma", "chroma_blue", "chroma_red"):
        recovered = results[plane]
        print(f"{plane:<12} recovered {recovered.recovered_branches} "
              f"branches ({recovered.probes} probes)")

    colored = results["colored"]
    luminance_view = colored.mean(axis=2)
    print()
    print("original (luminance)              recovered (colored, as luma)")
    left = ascii_render(secret.mean(axis=2), width=32)
    right = ascii_render(luminance_view, width=32)
    for a, b in zip(left, right):
        print(f"{a}  {b}")

    # Where did chroma structure light up?
    red_tint = colored[:, :, 0] - colored[:, :, 1]
    blue_tint = colored[:, :, 2] - colored[:, :, 1]
    print()
    print(f"chroma-active pixels: red-tinted {int((red_tint > 0).sum())}, "
          f"blue-tinted {int((blue_tint > 0).sum())} "
          "(the disc and stripe edges)")


if __name__ == "__main__":
    main()
