"""Section 9 demo: extract an AES key through speculative early exits.

The victim is the Intel-IPP style looped AES-NI encryption (Listing 1)
behind an encryption oracle that post-processes ciphertexts through a
byte-indexed table (Listing 3).  The attack:

1. profiles the oracle and locates the per-iteration PHR values of the
   loop's back edge (Read PHR + Pathfinder);
2. plants a not-taken prediction at iteration 1 (Write PHT), flushes the
   round count (widening the speculation window) and the probe array;
3. recovers the transient two-round ciphertext via Flush+Reload;
4. feeds a handful of chosen plaintexts through the differential key
   recovery, yielding the full AES-128 key.

Run:  python examples/aes_key_extraction.py [--workers N]

``--workers`` (or the ``REPRO_WORKERS`` environment variable) fans the
16 key-byte recoveries over the trial harness; the result is
bit-identical at any worker count.
"""

import argparse
import time

from repro.aes import AesAttackSpec, build_attack
from repro.utils.rng import DeterministicRng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the key recovery "
                             "(default: REPRO_WORKERS, else 1)")
    args = parser.parse_args()

    rng = DeterministicRng(0x5EC2E7)
    secret_key = rng.bytes(16)
    attack = build_attack(AesAttackSpec(key=secret_key,
                                        rng_seed=rng.fork(1).seed))

    print("victim: Intel-IPP style looped AES-128 (10 rounds)")
    print(f"secret key (hidden from attacker): {secret_key.hex()}")
    print()

    iteration_phr = attack.profile()
    print(f"profiled loop iterations: {sorted(iteration_phr)} "
          "(per-iteration PHR values recovered via Pathfinder)")

    plaintext = rng.bytes(16)
    print()
    print("speculative early-exit leaks (reduced-round ciphertexts):")
    for exit_iteration in (1, 3, 6, 9):
        leak = attack.leak_reduced_round(plaintext, exit_iteration)
        truth = attack.ground_truth_rrc(plaintext, exit_iteration)
        status = "OK" if bytes(leak.recovered) == truth else "MISMATCH"
        print(f"  exit@{exit_iteration}: {bytes(leak.recovered).hex()}  "
              f"[{status}]")

    print()
    print("running differential key recovery from iteration-1 exits ...")
    start = time.time()
    recovered = attack.recover_key(workers=args.workers)
    elapsed = time.time() - start
    print(f"recovered key: {recovered.hex()}")
    print(f"actual key   : {secret_key.hex()}")
    print(f"MATCH: {recovered == secret_key}  ({elapsed:.1f}s)")


if __name__ == "__main__":
    main()
