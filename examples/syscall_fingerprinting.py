"""Section 7.1 demo: fingerprinting kernel activity from userspace.

The PHR survives the user/kernel boundary, so a user program can read the
branch history that a syscall left behind -- identifying which syscall
ran and recovering its internal control flow.  This example runs each
modeled syscall, reads the post-return PHR, and matches it against a
dictionary of syscall fingerprints built the same way.

Run:  python examples/syscall_fingerprinting.py
"""

from repro import Machine, RAPTOR_LAKE
from repro.attacks import SimulatedKernel
from repro.utils.rng import DeterministicRng


def fingerprint(kernel: SimulatedKernel, name: str) -> int:
    """The deterministic PHR value a syscall leaves from a cleared PHR."""
    machine = Machine(RAPTOR_LAKE)
    machine.clear_phr()
    return kernel.invoke(machine, name).phr_value


def main() -> None:
    kernel = SimulatedKernel()
    names = kernel.syscall_names()

    print("building syscall fingerprint dictionary (attacker, offline):")
    dictionary = {}
    for name in names:
        value = fingerprint(kernel, name)
        dictionary[value] = name
        print(f"  {name:<14} entry=23 body={kernel.bodies[name]:<4} "
              f"exit=7 taken branches, PHR={value & 0xFFFFFFFF:#010x}...")

    print()
    print("victim makes secret syscalls; attacker reads the PHR after each:")
    rng = DeterministicRng(99)
    correct = 0
    trials = 12
    for trial in range(trials):
        secret_choice = rng.choice(names)
        machine = Machine(RAPTOR_LAKE)
        machine.clear_phr()
        observed = kernel.invoke(machine, secret_choice).phr_value
        guessed = dictionary.get(observed, "<unknown>")
        status = "OK" if guessed == secret_choice else "WRONG"
        correct += guessed == secret_choice
        print(f"  trial {trial:2}: victim ran {secret_choice:<14} "
              f"attacker identified {guessed:<14} [{status}]")

    print()
    capacity = Machine(RAPTOR_LAKE).config.phr_capacity
    print(f"identification rate: {correct}/{trials}")
    print(f"history budget for syscall bodies: "
          f"{capacity} - 23 (entry) - 7 (exit) = {capacity - 30} doublets "
          "(paper: 'over 160')")


if __name__ == "__main__":
    main()
